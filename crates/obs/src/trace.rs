//! Structured spans and events with an ambient per-thread collector.
//!
//! An [`Obs`] bundles a [`Clock`], a metrics [`Registry`], and (optionally)
//! a trace buffer. Installing one with [`install`] makes it the ambient
//! collector for the current thread; library code calls [`current`],
//! [`span`], and [`event`] without threading a handle through every
//! signature. Worker threads spawned by `wsn_util::parallel_map` do *not*
//! inherit the ambient collector — by design: events from racing workers
//! would destroy byte-stability. Workers may only bump [`Counter`] handles
//! (whose final sums are schedule-independent).
//!
//! When no collector is installed, [`span`]/[`event`] are cheap no-ops and
//! instrumented code that needs counters regardless (e.g. `CutLp`) creates
//! a private detached `Obs`.

use crate::clock::Clock;
use crate::metrics::{Counter, Registry};
use crate::ring::{FlightRecorder, RingRecord};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Trace schema version emitted in the header line and checked by the
/// validator in `report`.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Event severity. `Warn` marks anomalies (cold fallbacks, failed hops,
/// heartbeat divergences) that a summary should surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    Info,
    Warn,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// A typed key-value field attached to a span or event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One JSONL trace record.
#[derive(Clone, Debug)]
pub enum TraceRecord {
    SpanStart {
        id: u64,
        parent: Option<u64>,
        name: String,
        t: u64,
        fields: Vec<(String, FieldValue)>,
    },
    SpanEnd {
        id: u64,
        t: u64,
    },
    Event {
        span: Option<u64>,
        name: String,
        t: u64,
        level: Level,
        fields: Vec<(String, FieldValue)>,
    },
}

/// Observability context: clock + metrics registry + optional trace buffer
/// + optional flight-recorder ring.
pub struct Obs {
    clock: Clock,
    registry: Registry,
    trace: Option<Mutex<Vec<TraceRecord>>>,
    flight: Option<Arc<FlightRecorder>>,
    next_span_id: AtomicU64,
}

impl Obs {
    /// Collector that records a trace using the given clock.
    pub fn with_trace(clock: Clock) -> Arc<Obs> {
        Arc::new(Obs {
            clock,
            registry: Registry::new(),
            trace: Some(Mutex::new(Vec::new())),
            flight: None,
            next_span_id: AtomicU64::new(1),
        })
    }

    /// Collector whose only record sink is a fixed-capacity flight ring:
    /// spans and events land in the ring (newest `capacity` retained),
    /// never in an unbounded buffer — the "always on" black-box mode.
    pub fn with_flight(clock: Clock, capacity: usize) -> Arc<Obs> {
        Arc::new(Obs {
            clock,
            registry: Registry::new(),
            trace: None,
            flight: Some(FlightRecorder::new(capacity)),
            next_span_id: AtomicU64::new(1),
        })
    }

    /// Full trace buffer *and* a flight ring: every record goes to both.
    pub fn with_trace_and_flight(clock: Clock, capacity: usize) -> Arc<Obs> {
        Arc::new(Obs {
            clock,
            registry: Registry::new(),
            trace: Some(Mutex::new(Vec::new())),
            flight: Some(FlightRecorder::new(capacity)),
            next_span_id: AtomicU64::new(1),
        })
    }

    /// Metrics-only context: counters and gauges work, span/event calls are
    /// dropped. This is what instrumented code falls back to when nothing
    /// is installed, so counter reads always have a home.
    pub fn detached() -> Arc<Obs> {
        Arc::new(Obs {
            clock: Clock::wall(),
            registry: Registry::new(),
            trace: None,
            flight: None,
            next_span_id: AtomicU64::new(1),
        })
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// True if this context buffers trace records.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The flight ring, when one is armed.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// True if spans/events have at least one sink (trace buffer or ring).
    fn collecting(&self) -> bool {
        self.trace.is_some() || self.flight.is_some()
    }

    fn record(&self, rec: TraceRecord) {
        match (&self.flight, &self.trace) {
            (Some(ring), Some(trace)) => {
                ring.push(RingRecord::Trace(rec.clone()));
                trace.lock().unwrap().push(rec);
            }
            (Some(ring), None) => ring.push(RingRecord::Trace(rec)),
            (None, Some(trace)) => trace.lock().unwrap().push(rec),
            (None, None) => {}
        }
    }

    /// Bumps counter `name` on this registry and, when the flight ring is
    /// armed, logs the delta into the ring with a clock stamp so
    /// postmortems can see which counters moved before an incident.
    pub fn counter_delta(&self, name: &str, delta: u64) {
        self.registry.counter(name).add(delta);
        if let Some(ring) = &self.flight {
            ring.push(RingRecord::CounterDelta {
                name: name.to_string(),
                delta,
                t: self.clock.now(),
            });
        }
    }

    /// Records an unparented event directly on this collector (no ambient
    /// install required) — used by admission paths whose calling threads
    /// never install the service collector.
    pub fn emit_event(&self, level: Level, name: &str, fields: Vec<(String, FieldValue)>) {
        if !self.collecting() {
            return;
        }
        let t = self.clock.now();
        self.record(TraceRecord::Event { span: None, name: name.to_string(), t, level, fields });
    }

    /// Serializes the flight ring as a black-box JSONL dump, or `None`
    /// when no ring is armed. See [`FlightRecorder::dump_jsonl`].
    pub fn blackbox_jsonl(&self, reason: &str, worker: Option<usize>) -> Option<String> {
        self.flight.as_ref().map(|ring| ring.dump_jsonl(self.clock.kind(), reason, worker))
    }

    /// Serializes the buffered trace as JSONL: a header line followed by
    /// one record per line, in emission order.
    pub fn trace_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"trace_header\",\"schema_version\":{},\"clock\":{}}}\n",
            TRACE_SCHEMA_VERSION,
            json_string(self.clock.kind())
        );
        if let Some(trace) = &self.trace {
            for rec in trace.lock().unwrap().iter() {
                out.push_str(&record_json(rec));
                out.push('\n');
            }
        }
        out
    }
}

pub(crate) fn record_json(rec: &TraceRecord) -> String {
    match rec {
        TraceRecord::SpanStart { id, parent, name, t, fields } => {
            let mut s = format!("{{\"type\":\"span_start\",\"id\":{id},\"t\":{t}");
            if let Some(p) = parent {
                s.push_str(&format!(",\"parent\":{p}"));
            }
            s.push_str(&format!(",\"name\":{}", json_string(name)));
            push_fields(&mut s, fields);
            s.push('}');
            s
        }
        TraceRecord::SpanEnd { id, t } => {
            format!("{{\"type\":\"span_end\",\"id\":{id},\"t\":{t}}}")
        }
        TraceRecord::Event { span, name, t, level, fields } => {
            let mut s = format!("{{\"type\":\"event\",\"t\":{t}");
            if let Some(sp) = span {
                s.push_str(&format!(",\"span\":{sp}"));
            }
            s.push_str(&format!(
                ",\"name\":{},\"level\":{}",
                json_string(name),
                json_string(level.as_str())
            ));
            push_fields(&mut s, fields);
            s.push('}');
            s
        }
    }
}

fn push_fields(s: &mut String, fields: &[(String, FieldValue)]) {
    if fields.is_empty() {
        return;
    }
    s.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_string(k));
        s.push(':');
        match v {
            FieldValue::U64(n) => s.push_str(&n.to_string()),
            FieldValue::I64(n) => s.push_str(&n.to_string()),
            FieldValue::F64(x) => s.push_str(&json_f64(*x)),
            FieldValue::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            FieldValue::Str(t) => s.push_str(&json_string(t)),
        }
    }
    s.push('}');
}

/// Formats an `f64` as JSON: finite values use Rust's shortest round-trip
/// repr (deterministic), non-finite values become `null`.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // Bare integers like "3" are valid JSON numbers but ambiguous to
        // typed readers; keep them as-is (the parser treats all numbers
        // as f64 anyway).
        s
    } else {
        "null".to_string()
    }
}

/// JSON string literal with the required escapes.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

thread_local! {
    static AMBIENT: RefCell<Vec<Arc<Obs>>> = const { RefCell::new(Vec::new()) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Makes `obs` the ambient collector for this thread until the returned
/// guard drops. Installs nest: the previous collector is restored.
pub fn install(obs: Arc<Obs>) -> InstallGuard {
    AMBIENT.with(|a| a.borrow_mut().push(obs));
    InstallGuard { _priv: () }
}

/// Restores the previously installed collector on drop.
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        AMBIENT.with(|a| {
            a.borrow_mut().pop();
        });
    }
}

/// The ambient collector for this thread, if one is installed.
pub fn current() -> Option<Arc<Obs>> {
    AMBIENT.with(|a| a.borrow().last().cloned())
}

/// The ambient collector, or a fresh detached (metrics-only) one.
pub fn current_or_detached() -> Arc<Obs> {
    current().unwrap_or_else(Obs::detached)
}

/// Counter handle on the ambient registry; detached if none is installed
/// (the bumps then go nowhere observable, but stay valid and cheap).
pub fn counter(name: &str) -> Counter {
    current_or_detached().registry().counter(name)
}

/// Opens a span on the ambient collector. No-op (and allocation-free on the
/// trace buffer) when nothing is installed or tracing is disabled.
pub fn span(name: &str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// [`span`] with attached key-value fields.
pub fn span_with(name: &str, fields: Vec<(String, FieldValue)>) -> SpanGuard {
    let Some(obs) = current() else {
        return SpanGuard { active: None };
    };
    if !obs.collecting() {
        return SpanGuard { active: None };
    }
    let id = obs.next_span_id.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    let t = obs.clock.now();
    obs.record(TraceRecord::SpanStart { id, parent, name: name.to_string(), t, fields });
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard { active: Some((obs, id)) }
}

/// Closes its span on drop.
pub struct SpanGuard {
    active: Option<(Arc<Obs>, u64)>,
}

impl SpanGuard {
    /// Span id, if a collector recorded this span.
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|(_, id)| *id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((obs, id)) = self.active.take() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last() == Some(&id) {
                    stack.pop();
                } else {
                    // Out-of-order drop (guards held across moves); remove
                    // wherever it is so parenting stays sane.
                    stack.retain(|&x| x != id);
                }
            });
            let t = obs.clock.now();
            obs.record(TraceRecord::SpanEnd { id, t });
        }
    }
}

/// Emits an info event on the ambient collector (no-op when none).
pub fn event(name: &str, fields: Vec<(String, FieldValue)>) {
    emit(Level::Info, name, fields);
}

/// Emits a warn event on the ambient collector (no-op when none).
pub fn warn(name: &str, fields: Vec<(String, FieldValue)>) {
    emit(Level::Warn, name, fields);
}

fn emit(level: Level, name: &str, fields: Vec<(String, FieldValue)>) {
    let Some(obs) = current() else { return };
    if !obs.collecting() {
        return;
    }
    let span = SPAN_STACK.with(|s| s.borrow().last().copied());
    let t = obs.clock.now();
    obs.record(TraceRecord::Event { span, name: name.to_string(), t, level, fields });
}

/// Builds a field list tersely: `fields![("k", 3usize), ("s", "x")]` is
/// provided as a function because the vendored toolchain keeps macros out
/// of public APIs.
pub fn field(key: &str, value: impl Into<FieldValue>) -> (String, FieldValue) {
    (key.to_string(), value.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ambient_means_noop() {
        assert!(current().is_none());
        let g = span("orphan");
        assert!(g.id().is_none());
        event("nothing", vec![]);
        drop(g);
    }

    #[test]
    fn spans_nest_and_events_attach() {
        let obs = Obs::with_trace(Clock::virtual_ticks());
        let guard = install(obs.clone());
        {
            let outer = span("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = span_with("inner", vec![field("k", 7usize)]);
                assert_ne!(inner.id().unwrap(), outer_id);
                event("hello", vec![field("x", true)]);
            }
            warn("anomaly", vec![]);
        }
        drop(guard);
        let jsonl = obs.trace_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 7, "header + 2 starts + 2 events + 2 ends: {jsonl}");
        assert!(lines[0].contains("\"type\":\"trace_header\""));
        assert!(lines[0].contains("\"clock\":\"virtual\""));
        assert!(lines[2].contains("\"parent\":1"), "inner parents to outer: {}", lines[2]);
        assert!(lines[3].contains("\"span\":2"), "event attaches to inner: {}", lines[3]);
        assert!(lines[5].contains("\"level\":\"warn\""));
    }

    #[test]
    fn virtual_clock_traces_are_byte_identical() {
        let run = || {
            let obs = Obs::with_trace(Clock::virtual_ticks());
            let guard = install(obs.clone());
            for i in 0..3usize {
                let _s = span_with("work", vec![field("i", i)]);
                event("tick", vec![]);
            }
            drop(guard);
            obs.trace_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn install_nests_and_restores() {
        let a = Obs::with_trace(Clock::virtual_ticks());
        let b = Obs::with_trace(Clock::virtual_ticks());
        let ga = install(a.clone());
        {
            let gb = install(b.clone());
            event("to-b", vec![]);
            drop(gb);
        }
        event("to-a", vec![]);
        drop(ga);
        assert!(a.trace_jsonl().contains("to-a"));
        assert!(!a.trace_jsonl().contains("to-b"));
        assert!(b.trace_jsonl().contains("to-b"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn flight_only_collector_records_spans_into_the_ring() {
        let obs = Obs::with_flight(Clock::virtual_ticks(), 16);
        assert!(!obs.tracing_enabled(), "no unbounded buffer in flight-only mode");
        let guard = install(obs.clone());
        {
            let outer = span("job");
            assert!(outer.id().is_some(), "flight arming keeps spans live");
            event("inside", vec![field("k", 1usize)]);
        }
        obs.counter_delta("svc.completed", 1);
        drop(guard);
        assert_eq!(obs.registry().counter("svc.completed").get(), 1);
        let dump = obs.blackbox_jsonl("unit-test", Some(0)).unwrap();
        assert!(dump.contains("\"type\":\"blackbox_header\""), "{dump}");
        assert!(dump.contains("\"name\":\"job\""), "{dump}");
        assert!(dump.contains("\"type\":\"counter_delta\""), "{dump}");
        // Same pushes, same bytes: the dump is deterministic.
        assert!(obs.trace_jsonl().lines().count() == 1, "trace stays header-only");
    }

    #[test]
    fn trace_and_flight_both_receive_records() {
        let obs = Obs::with_trace_and_flight(Clock::virtual_ticks(), 4);
        let guard = install(obs.clone());
        {
            let _s = span("dual");
        }
        drop(guard);
        assert!(obs.trace_jsonl().contains("\"name\":\"dual\""));
        assert!(obs.blackbox_jsonl("x", None).unwrap().contains("\"name\":\"dual\""));
    }

    #[test]
    fn detached_counters_work() {
        let obs = Obs::detached();
        obs.registry().counter("x").add(3);
        assert_eq!(obs.registry().counter("x").get(), 3);
        assert!(!obs.tracing_enabled());
    }
}

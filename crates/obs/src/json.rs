//! Minimal JSON parser for trace validation and `obs-report`.
//!
//! The vendored `serde` stub has no real serialization, so the workspace
//! hand-rolls JSON in both directions. This reader covers the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, literals) and
//! keeps object keys in insertion order, which is all the trace tooling
//! needs. All numbers parse as `f64` — trace timestamps fit exactly below
//! 2^53 ticks/nanoseconds, far beyond any run this repo produces.

/// Parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match; trace objects never repeat keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True if the value is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// Serializes the value back to compact JSON. Integral numbers render
    /// without a fractional part so timestamps and ids round-trip exactly;
    /// object keys keep their insertion order, so parse → render is stable.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number {text:?}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Trace strings never contain surrogate pairs; map
                        // unpaired surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (possibly multi-byte).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap(), &Json::Bool(true));
        assert_eq!(v.get("b").unwrap().get("e").unwrap(), &Json::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"k\" 1}").is_err());
    }

    #[test]
    fn u64_extraction() {
        let v = parse("{\"t\": 42, \"x\": 1.5, \"n\": -3}").unwrap();
        assert_eq!(v.get("t").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("x").unwrap().as_u64(), None);
        assert_eq!(v.get("n").unwrap().as_u64(), None);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn render_round_trips() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null},"t":123456789}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.render(), doc, "parse → render is the identity on compact JSON");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn render_escapes_control_characters() {
        let v = Json::Str("quote \" slash \\ tab \t bell \u{7}".to_string());
        let text = v.render();
        assert!(text.contains("\\\"") && text.contains("\\\\") && text.contains("\\t"));
        assert!(text.contains("\\u0007"), "{text}");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn render_keeps_integers_exact() {
        let big = (1u64 << 52) + 3;
        let v = parse(&format!("{{\"t\":{big}}}")).unwrap();
        assert_eq!(v.render(), format!("{{\"t\":{big}}}"));
    }
}

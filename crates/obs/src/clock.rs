//! Trace timestamps: wall-clock nanoseconds or a deterministic virtual tick.
//!
//! Traces meant for diffing across runs must not embed wall time — two runs
//! of the same seed would differ on every line. The virtual clock instead
//! hands out a monotonically increasing tick per `now()` call, so a fixed
//! seed plus a serial execution path yields a byte-identical trace. Wall
//! mode reports nanoseconds since the clock was created and is what the
//! perf tooling (`bench-perf`) wants.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Time source for trace timestamps.
#[derive(Debug)]
pub enum Clock {
    /// Nanoseconds since clock construction (not stable across runs).
    Wall(Instant),
    /// One tick per observation; byte-stable for deterministic code paths.
    Virtual(AtomicU64),
}

impl Clock {
    /// Wall clock anchored at "now".
    pub fn wall() -> Self {
        Clock::Wall(Instant::now())
    }

    /// Deterministic tick counter starting at 1.
    pub fn virtual_ticks() -> Self {
        Clock::Virtual(AtomicU64::new(0))
    }

    /// Current timestamp. Virtual clocks advance by one tick per call.
    pub fn now(&self) -> u64 {
        match self {
            Clock::Wall(base) => u64::try_from(base.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Clock::Virtual(tick) => tick.fetch_add(1, Ordering::Relaxed) + 1,
        }
    }

    /// True for the deterministic tick clock.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual(_))
    }

    /// Label used in the trace header (`"wall"` / `"virtual"`).
    pub fn kind(&self) -> &'static str {
        match self {
            Clock::Wall(_) => "wall",
            Clock::Virtual(_) => "virtual",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_counts_from_one() {
        let c = Clock::virtual_ticks();
        assert_eq!(c.now(), 1);
        assert_eq!(c.now(), 2);
        assert_eq!(c.now(), 3);
        assert!(c.is_virtual());
        assert_eq!(c.kind(), "virtual");
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = Clock::wall();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_virtual());
        assert_eq!(c.kind(), "wall");
    }
}

//! Trace timestamps: wall-clock nanoseconds or a deterministic virtual tick.
//!
//! Traces meant for diffing across runs must not embed wall time — two runs
//! of the same seed would differ on every line. The virtual clock instead
//! hands out a monotonically increasing tick per `now()` call, so a fixed
//! seed plus a serial execution path yields a byte-identical trace. Wall
//! mode reports nanoseconds since the clock was created and is what the
//! perf tooling (`bench-perf`) wants.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Time source for trace timestamps.
#[derive(Debug)]
pub enum Clock {
    /// Nanoseconds since clock construction (not stable across runs).
    Wall(Instant),
    /// One tick per observation; byte-stable for deterministic code paths.
    Virtual(AtomicU64),
}

impl Clock {
    /// Wall clock anchored at "now".
    pub fn wall() -> Self {
        Clock::Wall(Instant::now())
    }

    /// Deterministic tick counter starting at 1.
    pub fn virtual_ticks() -> Self {
        Clock::Virtual(AtomicU64::new(0))
    }

    /// Current timestamp. Virtual clocks advance by one tick per call.
    pub fn now(&self) -> u64 {
        match self {
            Clock::Wall(base) => u64::try_from(base.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Clock::Virtual(tick) => tick.fetch_add(1, Ordering::Relaxed) + 1,
        }
    }

    /// True for the deterministic tick clock.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual(_))
    }

    /// Label used in the trace header (`"wall"` / `"virtual"`).
    pub fn kind(&self) -> &'static str {
        match self {
            Clock::Wall(_) => "wall",
            Clock::Virtual(_) => "virtual",
        }
    }
}

/// A hand-advanced nanosecond clock for deterministic deadline tests.
///
/// Unlike [`Clock::Virtual`] — which advances implicitly on every
/// observation and therefore measures *activity* — a `ManualClock` only
/// moves when a test calls [`ManualClock::advance`]. That makes it the
/// right source for *deadline* logic: a budget armed against a manual
/// clock expires exactly when the test says time has passed, never
/// because the host was slow or a sleep raced.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at t=0.
    pub fn new() -> Arc<Self> {
        Arc::new(Self { ns: AtomicU64::new(0) })
    }

    /// Current reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }

    /// Move the clock forward by `d`. Saturates at `u64::MAX`.
    pub fn advance(&self, d: Duration) {
        let dns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let mut cur = self.ns.load(Ordering::SeqCst);
        loop {
            let next = cur.saturating_add(dns);
            match self.ns.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A cloneable nanosecond time source for deadline arithmetic.
///
/// [`Clock`] stamps trace records and deliberately ticks on every read;
/// deadlines need a source that can be *read without side effects* and
/// shared across threads. `Wall` reads a monotonic anchor; `Manual`
/// reads a [`ManualClock`] that tests advance by hand, removing real
/// sleeps (and their flakiness) from budget-expiry paths.
#[derive(Debug, Clone)]
pub enum TimeSource {
    /// Monotonic nanoseconds since the anchor instant.
    Wall(Instant),
    /// Hand-advanced test clock.
    Manual(Arc<ManualClock>),
}

impl TimeSource {
    /// Wall time anchored at "now".
    pub fn wall() -> Self {
        TimeSource::Wall(Instant::now())
    }

    /// A manual source over `clock`.
    pub fn manual(clock: Arc<ManualClock>) -> Self {
        TimeSource::Manual(clock)
    }

    /// Current reading in nanoseconds. Side-effect free.
    pub fn now_ns(&self) -> u64 {
        match self {
            TimeSource::Wall(anchor) => {
                u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            TimeSource::Manual(clock) => clock.now_ns(),
        }
    }

    /// True when backed by a hand-advanced clock.
    pub fn is_manual(&self) -> bool {
        matches!(self, TimeSource::Manual(_))
    }
}

impl Default for TimeSource {
    fn default() -> Self {
        TimeSource::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_counts_from_one() {
        let c = Clock::virtual_ticks();
        assert_eq!(c.now(), 1);
        assert_eq!(c.now(), 2);
        assert_eq!(c.now(), 3);
        assert!(c.is_virtual());
        assert_eq!(c.kind(), "virtual");
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = Clock::wall();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_virtual());
        assert_eq!(c.kind(), "wall");
    }

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let mc = ManualClock::new();
        let ts = TimeSource::manual(mc.clone());
        assert_eq!(ts.now_ns(), 0);
        assert_eq!(ts.now_ns(), 0, "reads must be side-effect free");
        mc.advance(Duration::from_millis(5));
        assert_eq!(ts.now_ns(), 5_000_000);
        mc.advance(Duration::from_nanos(1));
        assert_eq!(ts.now_ns(), 5_000_001);
        assert!(ts.is_manual());
    }

    #[test]
    fn manual_clock_advance_saturates() {
        let mc = ManualClock::new();
        mc.advance(Duration::from_nanos(u64::MAX));
        mc.advance(Duration::from_secs(1));
        assert_eq!(mc.now_ns(), u64::MAX);
    }

    #[test]
    fn wall_source_is_monotone() {
        let ts = TimeSource::wall();
        let a = ts.now_ns();
        let b = ts.now_ns();
        assert!(b >= a);
        assert!(!ts.is_manual());
    }
}

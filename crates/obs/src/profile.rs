//! Hierarchical self-profiling derived from span nesting.
//!
//! [`profile_trace`] walks a JSONL trace and aggregates time by *span
//! path* — the stack of span names from the root to the span — rather
//! than by bare name, so `ira-attempt;lp-solve;lp-primal` is attributed
//! separately from a hypothetical `lp-primal` reached some other way.
//! Per path it keeps the instance count, total (end − start) time, and
//! self time (total minus time covered by child spans). The result
//! renders two ways: a top-K hotspot table ([`Profile::render`]) and
//! flamegraph-compatible folded stacks ([`Profile::folded`], one
//! `a;b;c value` line per path, consumable by `flamegraph.pl` or
//! `inferno`).

use crate::json::{parse, Json};
use crate::trace::TRACE_SCHEMA_VERSION;
use std::collections::{BTreeMap, HashMap};

/// Aggregate over every span instance sharing one root-to-leaf name path.
#[derive(Clone, Debug)]
pub struct HotPath {
    /// Span names from root to this span.
    pub path: Vec<String>,
    /// Instances closed on this path.
    pub count: u64,
    /// Sum of (end − start) over the instances.
    pub total: u64,
    /// Total minus time covered by child spans.
    pub self_time: u64,
}

/// A profiled trace: path-keyed aggregates plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Profile {
    /// `"wall"` (nanoseconds) or `"virtual"` (ticks).
    pub clock: String,
    /// Path-sorted aggregates (lexicographic on the path).
    pub paths: Vec<HotPath>,
    /// Malformed or unknown record lines skipped.
    pub skipped: usize,
    /// Spans left open at end of input (truncated trace); their partial
    /// time is dropped.
    pub unclosed: usize,
}

struct OpenSpan {
    path: Vec<String>,
    start: u64,
    parent: Option<u64>,
    child_time: u64,
}

/// Profiles `text` (a JSONL trace from [`crate::Obs::trace_jsonl`] or a
/// [`crate::merge_traces`] output). Lenient on record lines — damage is
/// counted, not fatal — but a missing or malformed header is an error.
pub fn profile_trace(text: &str) -> Result<Profile, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty trace: missing header line")?;
    let h = parse(header).map_err(|e| format!("line 1: {e}"))?;
    if h.get("type").and_then(Json::as_str) != Some("trace_header") {
        return Err("line 1: first record must be a trace_header".to_string());
    }
    match h.get("schema_version").and_then(Json::as_u64) {
        Some(TRACE_SCHEMA_VERSION) => {}
        Some(v) => return Err(format!("line 1: unsupported schema_version {v}")),
        None => return Err("line 1: trace_header missing schema_version".to_string()),
    }
    let clock = match h.get("clock").and_then(Json::as_str) {
        Some(c @ ("wall" | "virtual")) => c.to_string(),
        other => return Err(format!("line 1: unknown clock {other:?}")),
    };

    let mut open: HashMap<u64, OpenSpan> = HashMap::new();
    let mut aggs: BTreeMap<Vec<String>, HotPath> = BTreeMap::new();
    let mut skipped = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Ok(rec) = parse(line) else {
            skipped += 1;
            continue;
        };
        let Some(t) = rec.get("t").and_then(Json::as_u64) else {
            skipped += 1;
            continue;
        };
        match rec.get("type").and_then(Json::as_str) {
            Some("span_start") => {
                let (Some(id), Some(name)) =
                    (rec.get("id").and_then(Json::as_u64), rec.get("name").and_then(Json::as_str))
                else {
                    skipped += 1;
                    continue;
                };
                let parent = rec.get("parent").and_then(Json::as_u64);
                let mut path = match parent.and_then(|p| open.get(&p)) {
                    Some(p) => p.path.clone(),
                    None => Vec::new(),
                };
                path.push(name.to_string());
                open.insert(id, OpenSpan { path, start: t, parent, child_time: 0 });
            }
            Some("span_end") => {
                let Some(span) =
                    rec.get("id").and_then(Json::as_u64).and_then(|id| open.remove(&id))
                else {
                    skipped += 1;
                    continue;
                };
                let dur = t.saturating_sub(span.start);
                if let Some(parent) = span.parent.and_then(|p| open.get_mut(&p)) {
                    parent.child_time += dur;
                }
                let agg = aggs.entry(span.path.clone()).or_insert_with(|| HotPath {
                    path: span.path.clone(),
                    count: 0,
                    total: 0,
                    self_time: 0,
                });
                agg.count += 1;
                agg.total += dur;
                agg.self_time += dur.saturating_sub(span.child_time);
            }
            Some("event") => {}
            _ => skipped += 1,
        }
    }
    let unclosed = open.len();
    Ok(Profile { clock, paths: aggs.into_values().collect(), skipped, unclosed })
}

impl Profile {
    /// Sum of self time over every path (the profiled "wall" of the trace).
    pub fn total_self(&self) -> u64 {
        self.paths.iter().map(|p| p.self_time).sum()
    }

    /// Fraction of the total time of spans named `name` that is covered by
    /// their direct child spans — i.e. how much of the stage is attributed
    /// to named sub-stages. `None` when no such span closed (or its total
    /// is zero).
    pub fn attributed_fraction(&self, name: &str) -> Option<f64> {
        let total: u64 = self
            .paths
            .iter()
            .filter(|p| p.path.last().map(String::as_str) == Some(name))
            .map(|p| p.total)
            .sum();
        if total == 0 {
            return None;
        }
        let children: u64 = self
            .paths
            .iter()
            .filter(|p| p.path.len() >= 2 && p.path[p.path.len() - 2] == name)
            .map(|p| p.total)
            .sum();
        Some(children as f64 / total as f64)
    }

    /// Folded-stack text: one `root;child;leaf self_time` line per path in
    /// lexicographic path order — the flamegraph collapse format.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for p in &self.paths {
            out.push_str(&format!("{} {}\n", p.path.join(";"), p.self_time));
        }
        out
    }

    /// Top-`top_k` hotspot table, ranked by self time descending (path
    /// lexicographic on ties). Deterministic for a deterministic trace.
    pub fn render(&self, top_k: usize) -> String {
        let unit = if self.clock == "virtual" { "ticks" } else { "ns" };
        let total_self = self.total_self().max(1);
        let mut ranked: Vec<&HotPath> = self.paths.iter().collect();
        ranked.sort_by(|a, b| b.self_time.cmp(&a.self_time).then_with(|| a.path.cmp(&b.path)));
        let mut out = format!(
            "hotspots: {} path(s), {} clock{}{}\n\n",
            self.paths.len(),
            self.clock,
            if self.skipped > 0 {
                format!(", {} line(s) skipped", self.skipped)
            } else {
                String::new()
            },
            if self.unclosed > 0 {
                format!(", {} span(s) unclosed", self.unclosed)
            } else {
                String::new()
            },
        );
        out.push_str(&format!(
            "{:>14} {:>14} {:>8} {:>7}  path\n",
            format!("self ({unit})"),
            format!("total ({unit})"),
            "count",
            "self%"
        ));
        for p in ranked.iter().take(top_k) {
            out.push_str(&format!(
                "{:>14} {:>14} {:>8} {:>6.1}%  {}\n",
                p.self_time,
                p.total,
                p.count,
                100.0 * p.self_time as f64 / total_self as f64,
                p.path.join(";")
            ));
        }
        if self.paths.len() > top_k {
            out.push_str(&format!("... and {} more path(s)\n", self.paths.len() - top_k));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::trace::{install, span, Obs};

    fn nested_trace() -> String {
        let obs = Obs::with_trace(Clock::virtual_ticks());
        let guard = install(obs.clone());
        {
            let _solve = span("lp-solve");
            {
                let _r = span("lp-dual-repair");
            }
            {
                let _p = span("lp-primal");
            }
        }
        {
            let _other = span("separation");
        }
        drop(guard);
        obs.trace_jsonl()
    }

    #[test]
    fn paths_nest_and_self_time_subtracts_children() {
        let profile = profile_trace(&nested_trace()).unwrap();
        assert_eq!(profile.clock, "virtual");
        assert_eq!(profile.skipped, 0);
        let find = |path: &[&str]| {
            profile
                .paths
                .iter()
                .find(|p| p.path.iter().map(String::as_str).collect::<Vec<_>>() == path)
                .unwrap_or_else(|| panic!("missing path {path:?}"))
        };
        let solve = find(&["lp-solve"]);
        let repair = find(&["lp-solve", "lp-dual-repair"]);
        let primal = find(&["lp-solve", "lp-primal"]);
        assert_eq!(solve.count, 1);
        assert_eq!(solve.self_time, solve.total - repair.total - primal.total);
        find(&["separation"]);
    }

    #[test]
    fn attribution_fraction_counts_direct_children() {
        let profile = profile_trace(&nested_trace()).unwrap();
        let f = profile.attributed_fraction("lp-solve").unwrap();
        assert!(f > 0.0 && f < 1.0, "partially attributed: {f}");
        assert!(
            profile.attributed_fraction("separation").is_none()
                || profile.attributed_fraction("separation") == Some(0.0),
            "leaf spans attribute nothing"
        );
        assert!(profile.attributed_fraction("nonexistent").is_none());
    }

    #[test]
    fn folded_output_is_flamegraph_shaped() {
        let profile = profile_trace(&nested_trace()).unwrap();
        let folded = profile.folded();
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("stack <space> value");
            assert!(!stack.is_empty());
            value.parse::<u64>().expect("numeric value");
        }
        assert!(folded.contains("lp-solve;lp-dual-repair "), "{folded}");
        assert_eq!(profile.folded(), folded, "deterministic");
    }

    #[test]
    fn render_ranks_by_self_time() {
        let profile = profile_trace(&nested_trace()).unwrap();
        let text = profile.render(10);
        assert!(text.contains("hotspots:"), "{text}");
        assert!(text.contains("lp-solve;lp-primal"), "{text}");
        let short = profile.render(1);
        assert!(short.contains("more path(s)"), "{short}");
    }

    #[test]
    fn profiler_requires_a_trace_header_but_tolerates_damage() {
        assert!(profile_trace("").is_err());
        assert!(profile_trace("{\"type\":\"event\",\"t\":1}\n").is_err());
        let text = "{\"type\":\"trace_header\",\"schema_version\":1,\"clock\":\"virtual\"}\n\
                    garbage\n\
                    {\"type\":\"span_start\",\"id\":1,\"t\":1,\"name\":\"a\"}\n\
                    {\"type\":\"span_start\",\"id\":2,\"t\":2,\"name\":\"b\",\"parent\":1}\n\
                    {\"type\":\"span_end\",\"id\":2,\"t\":3}\n";
        let profile = profile_trace(text).unwrap();
        assert_eq!(profile.skipped, 1);
        assert_eq!(profile.unclosed, 1, "truncated outer span is reported");
        assert_eq!(profile.paths.len(), 1, "only the closed child aggregates");
        assert_eq!(profile.paths[0].path, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn profiles_merged_traces() {
        let mk = || {
            let obs = Obs::with_trace(Clock::virtual_ticks());
            let guard = install(obs.clone());
            {
                let _s = span("svc.job");
                let _inner = span("lp-solve");
            }
            drop(guard);
            obs.trace_jsonl()
        };
        let merged =
            crate::report::merge_traces(&[("w0".to_string(), mk()), ("w1".to_string(), mk())])
                .unwrap();
        let profile = profile_trace(&merged).unwrap();
        let job = profile
            .paths
            .iter()
            .find(|p| p.path == vec!["svc.job".to_string(), "lp-solve".to_string()])
            .unwrap();
        assert_eq!(job.count, 2);
    }
}

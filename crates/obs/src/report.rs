//! Trace validation and the human-readable summary renderer behind
//! `mrlc-experiments obs-report`.
//!
//! [`validate_trace`] checks a JSONL trace line by line against the schema
//! emitted by [`crate::trace`] — header first, span ids unique, parents and
//! ends referencing live spans, levels well-formed — and aggregates spans
//! by name (count, total time, self time = total minus child spans).
//! [`render_summary`] prints the top-k hot spans and the event tallies.

use crate::json::{parse, Json};
use crate::trace::TRACE_SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Aggregate over every span with the same name.
#[derive(Clone, Debug)]
pub struct SpanAgg {
    pub name: String,
    pub count: u64,
    /// Sum of (end − start) over all instances.
    pub total: u64,
    /// Total minus time covered by child spans.
    pub self_time: u64,
    /// Largest single instance.
    pub max: u64,
}

/// Aggregate over every event with the same name.
#[derive(Clone, Debug)]
pub struct EventAgg {
    pub name: String,
    pub count: u64,
    pub warns: u64,
}

/// A validated trace, reduced to per-name aggregates.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// `"wall"` (nanoseconds) or `"virtual"` (ticks).
    pub clock: String,
    /// Sorted by total time descending, then name.
    pub spans: Vec<SpanAgg>,
    /// Sorted by name.
    pub events: Vec<EventAgg>,
    /// Record lines validated (header excluded).
    pub records: usize,
}

impl TraceSummary {
    /// Aggregate for one span name, if present.
    pub fn span(&self, name: &str) -> Option<&SpanAgg> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Aggregate for one event name, if present.
    pub fn event(&self, name: &str) -> Option<&EventAgg> {
        self.events.iter().find(|e| e.name == name)
    }
}

/// A lenient read of a possibly truncated or corrupt trace: the usual
/// aggregates plus an account of what had to be dropped to get them.
#[derive(Clone, Debug)]
pub struct LenientSummary {
    /// Aggregates over the lines that did validate.
    pub summary: TraceSummary,
    /// Malformed record lines skipped (header excluded — a bad header is
    /// still a hard error).
    pub skipped: usize,
    /// Line number and reason of the first skip, for diagnostics.
    pub first_skip: Option<(usize, String)>,
    /// Spans still open at end of input — the signature of a truncated
    /// file. Their partial time is dropped, not guessed.
    pub unclosed_spans: usize,
}

struct OpenSpan {
    name: String,
    start: u64,
    parent: Option<u64>,
    child_time: u64,
}

/// Mutable validation state shared by the strict and lenient readers.
#[derive(Default)]
struct BodyState {
    open: HashMap<u64, OpenSpan>,
    seen_ids: std::collections::HashSet<u64>,
    span_aggs: BTreeMap<String, SpanAgg>,
    event_aggs: BTreeMap<String, EventAgg>,
    last_t: u64,
    records: usize,
}

impl BodyState {
    /// Validates and folds in one record line. On error the state may have
    /// absorbed part of the record (e.g. its span id); the strict reader
    /// aborts immediately so this only matters to the lenient one, which
    /// tolerates it by design.
    fn apply(&mut self, lineno: usize, line: &str) -> Result<(), String> {
        let rec = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if !rec.is_obj() {
            return Err(format!("line {lineno}: record is not an object"));
        }
        let t = rec
            .get("t")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {lineno}: missing integer \"t\""))?;
        if t < self.last_t {
            return Err(format!(
                "line {lineno}: timestamp {t} goes backwards (last {})",
                self.last_t
            ));
        }
        self.last_t = t;
        if let Some(fields) = rec.get("fields") {
            if !fields.is_obj() {
                return Err(format!("line {lineno}: \"fields\" must be an object"));
            }
        }
        match rec.get("type").and_then(Json::as_str) {
            Some("span_start") => {
                let id = rec
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {lineno}: span_start missing id"))?;
                if !self.seen_ids.insert(id) {
                    return Err(format!("line {lineno}: span id {id} reused"));
                }
                let name = rec
                    .get("name")
                    .and_then(Json::as_str)
                    .filter(|n| !n.is_empty())
                    .ok_or_else(|| format!("line {lineno}: span_start missing name"))?
                    .to_string();
                let parent = match rec.get("parent") {
                    None => None,
                    Some(p) => {
                        let pid = p
                            .as_u64()
                            .ok_or_else(|| format!("line {lineno}: parent must be an id"))?;
                        if !self.open.contains_key(&pid) {
                            return Err(format!("line {lineno}: parent span {pid} is not open"));
                        }
                        Some(pid)
                    }
                };
                self.open.insert(id, OpenSpan { name, start: t, parent, child_time: 0 });
            }
            Some("span_end") => {
                let id = rec
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {lineno}: span_end missing id"))?;
                let span = self
                    .open
                    .remove(&id)
                    .ok_or_else(|| format!("line {lineno}: span_end for unopened span {id}"))?;
                let dur = t - span.start;
                if let Some(pid) = span.parent {
                    if let Some(parent) = self.open.get_mut(&pid) {
                        parent.child_time += dur;
                    }
                }
                let agg = self.span_aggs.entry(span.name.clone()).or_insert_with(|| SpanAgg {
                    name: span.name.clone(),
                    count: 0,
                    total: 0,
                    self_time: 0,
                    max: 0,
                });
                agg.count += 1;
                agg.total += dur;
                agg.self_time += dur.saturating_sub(span.child_time);
                agg.max = agg.max.max(dur);
            }
            Some("event") => {
                let name = rec
                    .get("name")
                    .and_then(Json::as_str)
                    .filter(|n| !n.is_empty())
                    .ok_or_else(|| format!("line {lineno}: event missing name"))?
                    .to_string();
                let level = rec
                    .get("level")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {lineno}: event missing level"))?;
                if !matches!(level, "info" | "warn") {
                    return Err(format!("line {lineno}: unknown level {level:?}"));
                }
                if let Some(sp) = rec.get("span") {
                    let sid = sp
                        .as_u64()
                        .ok_or_else(|| format!("line {lineno}: \"span\" must be an id"))?;
                    if !self.open.contains_key(&sid) {
                        return Err(format!("line {lineno}: event references closed span {sid}"));
                    }
                }
                let agg = self.event_aggs.entry(name.clone()).or_insert_with(|| EventAgg {
                    name,
                    count: 0,
                    warns: 0,
                });
                agg.count += 1;
                if level == "warn" {
                    agg.warns += 1;
                }
            }
            Some(other) => return Err(format!("line {lineno}: unknown record type {other:?}")),
            None => return Err(format!("line {lineno}: record missing \"type\"")),
        }
        self.records += 1;
        Ok(())
    }

    fn into_summary(self, clock: String) -> TraceSummary {
        let mut spans: Vec<SpanAgg> = self.span_aggs.into_values().collect();
        spans.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(&b.name)));
        let events: Vec<EventAgg> = self.event_aggs.into_values().collect();
        TraceSummary { clock, spans, events, records: self.records }
    }
}

/// Parses and validates the header line, returning the clock kind. A trace
/// without a well-formed header is not a trace — both readers reject it.
fn validate_header(header: &str) -> Result<String, String> {
    let header = parse(header).map_err(|e| format!("line 1: {e}"))?;
    if header.get("type").and_then(Json::as_str) != Some("trace_header") {
        return Err("line 1: first record must be a trace_header".to_string());
    }
    match header.get("schema_version").and_then(Json::as_u64) {
        Some(TRACE_SCHEMA_VERSION) => {}
        Some(v) => return Err(format!("line 1: unsupported schema_version {v}")),
        None => return Err("line 1: trace_header missing schema_version".to_string()),
    }
    match header.get("clock").and_then(Json::as_str) {
        Some(c @ ("wall" | "virtual")) => Ok(c.to_string()),
        Some(c) => Err(format!("line 1: unknown clock {c:?}")),
        None => Err("line 1: trace_header missing clock".to_string()),
    }
}

/// Validates `text` as a JSONL trace and returns the aggregates.
/// Every schema violation is an error naming the offending line.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty trace: missing header line")?;
    let clock = validate_header(header)?;
    let mut st = BodyState::default();
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        st.apply(idx + 1, line)?;
    }
    if !st.open.is_empty() {
        let mut ids: Vec<u64> = st.open.keys().copied().collect();
        ids.sort_unstable();
        return Err(format!("trace ends with {} unclosed span(s): ids {ids:?}", ids.len()));
    }
    Ok(st.into_summary(clock))
}

/// As [`validate_trace`], but degrades gracefully on damaged input: any
/// malformed record line is skipped and counted rather than fatal, and
/// spans left open by a truncated file are reported, not rejected. Only a
/// missing or malformed header — i.e. not a trace at all — is an error.
pub fn validate_trace_lenient(text: &str) -> Result<LenientSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty trace: missing header line")?;
    let clock = validate_header(header)?;
    let mut st = BodyState::default();
    let mut skipped = 0usize;
    let mut first_skip = None;
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if let Err(reason) = st.apply(lineno, line) {
            skipped += 1;
            if first_skip.is_none() {
                first_skip = Some((lineno, reason));
            }
        }
    }
    let unclosed_spans = st.open.len();
    Ok(LenientSummary { summary: st.into_summary(clock), skipped, first_skip, unclosed_spans })
}

/// Merges per-worker JSONL traces into one deterministic trace.
///
/// The service fleet collects one virtual-clock trace per worker thread;
/// a single merged timeline is what `obs-report` wants to summarize. Each
/// input is `(label, jsonl)` — the label (worker name) is stamped on every
/// merged record as a `"w"` field, which the validators ignore. Records
/// are stably ordered by `(timestamp, input index, line order)`, so the
/// merge of the same traces is byte-identical regardless of how the files
/// were gathered. Span ids are remapped to a fresh sequence per first
/// appearance so ids from different workers never collide; `parent` and
/// event `span` references (always intra-worker) are rewritten to match.
///
/// All inputs must share the same clock kind — merging wall-clock and
/// virtual-tick timelines would interleave incomparable timestamps.
/// The merged header carries a `merged_from` count. Truncated inputs
/// (unclosed spans) merge fine; corrupt record lines are an error naming
/// the offending input and line.
pub fn merge_traces(traces: &[(String, String)]) -> Result<String, String> {
    if traces.is_empty() {
        return Err("nothing to merge: no traces given".to_string());
    }
    let mut clock: Option<String> = None;
    // (t, input index, per-input line order, record)
    let mut records: Vec<(u64, usize, usize, Json)> = Vec::new();
    for (widx, (label, text)) in traces.iter().enumerate() {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| format!("trace {label:?}: empty"))?;
        let this_clock = validate_header(header).map_err(|e| format!("trace {label:?}: {e}"))?;
        match &clock {
            None => clock = Some(this_clock),
            Some(c) if *c == this_clock => {}
            Some(c) => {
                return Err(format!(
                    "trace {label:?} uses the {this_clock:?} clock but earlier traces use {c:?}"
                ))
            }
        }
        for (seq, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let lineno = seq + 2;
            let rec = parse(line).map_err(|e| format!("trace {label:?} line {lineno}: {e}"))?;
            let t = rec
                .get("t")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace {label:?} line {lineno}: missing integer \"t\""))?;
            records.push((t, widx, seq, rec));
        }
    }
    records.sort_by_key(|(t, widx, seq, _)| (*t, *widx, *seq));

    let mut id_map: HashMap<(usize, u64), u64> = HashMap::new();
    let mut next_id = 1u64;
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"trace_header\",\"schema_version\":{TRACE_SCHEMA_VERSION},\
         \"clock\":\"{}\",\"merged_from\":{}}}\n",
        clock.expect("at least one trace"),
        traces.len()
    ));
    for (_, widx, _, mut rec) in records {
        let kind = rec.get("type").and_then(Json::as_str).unwrap_or("").to_string();
        let remap =
            |id_map: &mut HashMap<(usize, u64), u64>, field: &mut Json| -> Result<(), String> {
                let old = field.as_u64().ok_or_else(|| {
                    format!("trace {:?}: span reference is not an id", traces[widx].0)
                })?;
                let new = id_map.get(&(widx, old)).copied().ok_or_else(|| {
                    format!("trace {:?}: reference to unknown span id {old}", traces[widx].0)
                })?;
                *field = Json::Num(new as f64);
                Ok(())
            };
        if let Json::Obj(fields) = &mut rec {
            for (key, value) in fields.iter_mut() {
                match (kind.as_str(), key.as_str()) {
                    ("span_start", "id") => {
                        let old = value.as_u64().ok_or_else(|| {
                            format!("trace {:?}: span_start id is not an integer", traces[widx].0)
                        })?;
                        let new = next_id;
                        next_id += 1;
                        id_map.insert((widx, old), new);
                        *value = Json::Num(new as f64);
                    }
                    ("span_end", "id") | ("span_start", "parent") | ("event", "span") => {
                        remap(&mut id_map, value)?;
                    }
                    _ => {}
                }
            }
            fields.push(("w".to_string(), Json::Str(traces[widx].0.clone())));
        } else {
            return Err(format!("trace {:?}: record is not an object", traces[widx].0));
        }
        out.push_str(&rec.render());
        out.push('\n');
    }
    Ok(out)
}

/// Renders the summary as a fixed-width table: top-`top_k` spans by total
/// time plus every event tally. Deterministic for a deterministic trace.
pub fn render_summary(summary: &TraceSummary, top_k: usize) -> String {
    let unit = if summary.clock == "virtual" { "ticks" } else { "ns" };
    let mut out = String::new();
    out.push_str(&format!("trace: {} records, {} clock\n\n", summary.records, summary.clock));
    out.push_str(&format!(
        "{:<28} {:>8} {:>14} {:>14} {:>12}\n",
        "span",
        "count",
        format!("total ({unit})"),
        format!("self ({unit})"),
        "max"
    ));
    for agg in summary.spans.iter().take(top_k) {
        out.push_str(&format!(
            "{:<28} {:>8} {:>14} {:>14} {:>12}\n",
            agg.name, agg.count, agg.total, agg.self_time, agg.max
        ));
    }
    if summary.spans.len() > top_k {
        out.push_str(&format!("... and {} more span name(s)\n", summary.spans.len() - top_k));
    }
    if !summary.events.is_empty() {
        out.push_str(&format!("\n{:<28} {:>8} {:>8}\n", "event", "count", "warns"));
        for agg in &summary.events {
            out.push_str(&format!("{:<28} {:>8} {:>8}\n", agg.name, agg.count, agg.warns));
        }
    }
    out
}

/// Renders a metrics-registry JSON export ([`crate::Registry::to_json`])
/// as fixed-width tables: every counter (the `ira.*` solver effort and
/// `sep.*` cut-pool engine counters included), every gauge, and every
/// histogram with bucket-estimated p50/p90/p99 quantiles.
/// Deterministic — the registry serializes in name order.
pub fn render_metrics(text: &str) -> Result<String, String> {
    let doc = parse(text).map_err(|e| format!("invalid metrics JSON: {e}"))?;
    let section = |key: &str| -> Result<Vec<(String, f64)>, String> {
        match doc.get(key) {
            None => Ok(Vec::new()),
            Some(Json::Obj(entries)) => entries
                .iter()
                .map(|(name, v)| {
                    v.as_f64()
                        .map(|n| (name.clone(), n))
                        .ok_or_else(|| format!("metric {name:?} is not a number"))
                })
                .collect(),
            Some(_) => Err(format!("metrics field {key:?} is not an object")),
        }
    };
    let counters = section("counters")?;
    let gauges = section("gauges")?;
    let histograms = histogram_section(&doc)?;
    let mut out = String::new();
    out.push_str(&format!("{:<28} {:>16}\n", "counter", "value"));
    for (name, value) in &counters {
        out.push_str(&format!("{:<28} {:>16}\n", name, *value as u64));
    }
    if !gauges.is_empty() {
        out.push_str(&format!("\n{:<28} {:>16}\n", "gauge", "value"));
        for (name, value) in &gauges {
            out.push_str(&format!("{:<28} {:>16}\n", name, value));
        }
    }
    if !histograms.is_empty() {
        out.push_str(&format!(
            "\n{:<28} {:>8} {:>12} {:>9} {:>9} {:>9}\n",
            "histogram", "count", "sum", "p50", "p90", "p99"
        ));
        for (name, bounds, counts, sum) in &histograms {
            let count: u64 = counts.iter().sum();
            out.push_str(&format!(
                "{:<28} {:>8} {:>12} {:>9} {:>9} {:>9}\n",
                name,
                count,
                sum,
                histogram_quantile(bounds, counts, 0.50),
                histogram_quantile(bounds, counts, 0.90),
                histogram_quantile(bounds, counts, 0.99),
            ));
        }
    }
    if let Some(digest) = fleet_digest(&counters) {
        out.push('\n');
        out.push_str(&digest);
    }
    Ok(out)
}

/// Parses the `"histograms"` export section into
/// `(name, bounds, per-bucket counts, sum)` rows.
#[allow(clippy::type_complexity)]
fn histogram_section(doc: &Json) -> Result<Vec<(String, Vec<u64>, Vec<u64>, u64)>, String> {
    let entries = match doc.get("histograms") {
        None => return Ok(Vec::new()),
        Some(Json::Obj(entries)) => entries,
        Some(_) => return Err("metrics field \"histograms\" is not an object".to_string()),
    };
    let u64_list = |name: &str, v: Option<&Json>, key: &str| -> Result<Vec<u64>, String> {
        match v {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|x| x.as_u64().ok_or_else(|| format!("histogram {name:?}: bad {key} entry")))
                .collect(),
            _ => Err(format!("histogram {name:?} missing {key:?} array")),
        }
    };
    let mut out = Vec::new();
    for (name, body) in entries {
        let bounds = u64_list(name, body.get("bounds"), "bounds")?;
        let counts = u64_list(name, body.get("counts"), "counts")?;
        if counts.len() != bounds.len() + 1 {
            return Err(format!("histogram {name:?}: counts/bounds length mismatch"));
        }
        let sum = body
            .get("sum")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histogram {name:?} missing \"sum\""))?;
        out.push((name.clone(), bounds, counts, sum));
    }
    Ok(out)
}

/// Quantile estimate from fixed buckets: the inclusive upper bound of the
/// bucket containing the `q`-th observation, `">last"` when it falls in
/// the overflow bucket, `"-"` when the histogram is empty.
fn histogram_quantile(bounds: &[u64], counts: &[u64], q: f64) -> String {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return "-".to_string();
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut acc = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        acc += c;
        if acc >= target {
            return match bounds.get(i) {
                Some(b) => format!("<={b}"),
                None => format!(">{}", bounds[bounds.len() - 1]),
            };
        }
    }
    format!(">{}", bounds[bounds.len() - 1])
}

/// Renders a flight-recorder black-box dump
/// ([`crate::ring::FlightRecorder::dump_jsonl`]) as an incident timeline:
/// one line per retained record in ring-sequence order, prefixed by a
/// header naming the trigger, the worker, and how many older records the
/// ring had already overwritten.
pub fn render_postmortem(text: &str) -> Result<String, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty dump: missing blackbox_header line")?;
    let h = parse(header).map_err(|e| format!("line 1: {e}"))?;
    if h.get("type").and_then(Json::as_str) != Some("blackbox_header") {
        return Err("line 1: first record must be a blackbox_header".to_string());
    }
    match h.get("schema_version").and_then(Json::as_u64) {
        Some(TRACE_SCHEMA_VERSION) => {}
        Some(v) => return Err(format!("line 1: unsupported schema_version {v}")),
        None => return Err("line 1: blackbox_header missing schema_version".to_string()),
    }
    let clock = h.get("clock").and_then(Json::as_str).unwrap_or("?").to_string();
    let reason = h.get("reason").and_then(Json::as_str).unwrap_or("?").to_string();
    let worker = h.get("worker").and_then(Json::as_u64);
    let dropped = h.get("dropped").and_then(Json::as_u64).unwrap_or(0);
    let unit = if clock == "virtual" { "ticks" } else { "ns" };
    let mut out = format!(
        "black box: {reason}{} — {clock} clock, {dropped} older record(s) overwritten\n\n",
        worker.map(|w| format!(" (worker {w})")).unwrap_or_default()
    );
    out.push_str(&format!("{:>6} {:>10}  {:<14} detail\n", "seq", format!("t ({unit})"), "record"));
    let mut rendered = 0usize;
    let mut warns = 0usize;
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let rec = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let seq = rec
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {lineno}: record missing \"seq\""))?;
        let t = rec
            .get("t")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {lineno}: record missing \"t\""))?;
        let fields = || match rec.get("fields") {
            Some(Json::Obj(kv)) => {
                let pairs: Vec<String> =
                    kv.iter().map(|(k, v)| format!("{k}={}", v.render())).collect();
                format!(" {{{}}}", pairs.join(", "))
            }
            _ => String::new(),
        };
        let name = || rec.get("name").and_then(Json::as_str).unwrap_or("?").to_string();
        let (kind, detail) = match rec.get("type").and_then(Json::as_str) {
            Some("span_start") => {
                let id = rec.get("id").and_then(Json::as_u64).unwrap_or(0);
                let parent = rec
                    .get("parent")
                    .and_then(Json::as_u64)
                    .map(|p| format!(", parent {p}"))
                    .unwrap_or_default();
                ("span_start", format!("{} [id {id}{parent}]{}", name(), fields()))
            }
            Some("span_end") => {
                let id = rec.get("id").and_then(Json::as_u64).unwrap_or(0);
                ("span_end", format!("[id {id}]"))
            }
            Some("event") => {
                let level = rec.get("level").and_then(Json::as_str).unwrap_or("info");
                if level == "warn" {
                    warns += 1;
                    ("event(warn)", format!("{}{}", name(), fields()))
                } else {
                    ("event", format!("{}{}", name(), fields()))
                }
            }
            Some("counter_delta") => {
                let delta = rec.get("delta").and_then(Json::as_u64).unwrap_or(0);
                ("counter", format!("{} +{delta}", name()))
            }
            Some(other) => return Err(format!("line {lineno}: unknown record type {other:?}")),
            None => return Err(format!("line {lineno}: record missing \"type\"")),
        };
        out.push_str(&format!("{seq:>6} {t:>10}  {kind:<14} {detail}\n"));
        rendered += 1;
    }
    out.push_str(&format!("\n{rendered} record(s), {warns} warn(s)\n"));
    Ok(out)
}

/// Rolls the service-fleet (`svc.*`) and degradation-ladder
/// (`resilience.*`) counters up into short prose lines, appended below the
/// raw tables so a fleet run's health reads at a glance. `None` when the
/// export has no fleet counters at all (e.g. a plain solver run).
fn fleet_digest(counters: &[(String, f64)]) -> Option<String> {
    let get = |name: &str| counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v as u64);
    let has_svc = counters.iter().any(|(n, _)| n.starts_with("svc."));
    let has_res = counters.iter().any(|(n, _)| n.starts_with("resilience."));
    if !has_svc && !has_res {
        return None;
    }
    let mut out = String::from("fleet digest\n");
    if has_svc {
        out.push_str(&format!(
            "  svc: {} accepted, {} completed, {} shed, {} retries, {} quarantined \
             ({} hot hits), {} worker restart(s), {} cache hit(s), {} parked\n",
            get("svc.accepted"),
            get("svc.completed"),
            get("svc.shed"),
            get("svc.retries"),
            get("svc.quarantined"),
            get("svc.quarantine_hits"),
            get("svc.worker_restarts"),
            get("svc.cache_hits"),
            get("svc.parked"),
        ));
        // svc.outcome.<tier> counters are dynamic; the registry already
        // serializes name-sorted, so this sub-line is deterministic.
        let outcomes: Vec<String> = counters
            .iter()
            .filter_map(|(n, v)| {
                n.strip_prefix("svc.outcome.").map(|tier| format!("{tier} {}", *v as u64))
            })
            .collect();
        if !outcomes.is_empty() {
            out.push_str(&format!("  svc outcomes: {}\n", outcomes.join(", ")));
        }
    }
    if has_res {
        out.push_str(&format!(
            "  resilience: {} degraded attempt(s), {} checkpoint handback(s)\n",
            get("resilience.degrade"),
            get("resilience.handback"),
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::trace::{event, field, install, span, span_with, warn, Obs};

    fn sample_trace() -> String {
        let obs = Obs::with_trace(Clock::virtual_ticks());
        let guard = install(obs.clone());
        {
            let _outer = span("ira-attempt");
            for i in 0..2usize {
                let _lp = span_with("lp-solve", vec![field("round", i)]);
                event("lp.pivot_batch", vec![field("pivots", 3usize)]);
            }
            let _sep = span("separation");
            warn("lp.cold_fallback", vec![field("reason", "drift")]);
        }
        drop(guard);
        obs.trace_jsonl()
    }

    #[test]
    fn round_trip_validates_and_aggregates() {
        let jsonl = sample_trace();
        let summary = validate_trace(&jsonl).expect("generated trace must validate");
        assert_eq!(summary.clock, "virtual");
        let outer = summary.span("ira-attempt").unwrap();
        assert_eq!(outer.count, 1);
        let lp = summary.span("lp-solve").unwrap();
        assert_eq!(lp.count, 2);
        assert!(outer.total >= lp.total + summary.span("separation").unwrap().total);
        assert!(outer.self_time < outer.total, "children must subtract from self time");
        let fallback = summary.event("lp.cold_fallback").unwrap();
        assert_eq!(fallback.warns, 1);
    }

    #[test]
    fn renderer_mentions_spans_and_events() {
        let summary = validate_trace(&sample_trace()).unwrap();
        let text = render_summary(&summary, 10);
        assert!(text.contains("lp-solve"));
        assert!(text.contains("separation"));
        assert!(text.contains("lp.cold_fallback"));
        assert!(text.contains("virtual clock"));
    }

    #[test]
    fn rejects_missing_header() {
        let err = validate_trace("{\"type\":\"event\",\"t\":1}\n").unwrap_err();
        assert!(err.contains("trace_header"), "{err}");
    }

    #[test]
    fn rejects_bad_records() {
        let header = "{\"type\":\"trace_header\",\"schema_version\":1,\"clock\":\"virtual\"}\n";
        let cases = [
            ("{\"type\":\"span_end\",\"id\":9,\"t\":1}", "unopened"),
            ("{\"type\":\"mystery\",\"t\":1}", "unknown record type"),
            ("{\"type\":\"event\",\"t\":1,\"name\":\"x\",\"level\":\"fatal\"}", "unknown level"),
            ("{\"type\":\"span_start\",\"id\":1,\"t\":1,\"name\":\"a\",\"parent\":7}", "not open"),
        ];
        for (line, want) in cases {
            let err = validate_trace(&format!("{header}{line}\n")).unwrap_err();
            assert!(err.contains(want), "{line} -> {err}");
        }
    }

    #[test]
    fn rejects_unclosed_spans() {
        let text = "{\"type\":\"trace_header\",\"schema_version\":1,\"clock\":\"virtual\"}\n\
                    {\"type\":\"span_start\",\"id\":1,\"t\":1,\"name\":\"a\"}\n";
        let err = validate_trace(text).unwrap_err();
        assert!(err.contains("unclosed"), "{err}");
    }

    #[test]
    fn rejects_time_reversal() {
        let text = "{\"type\":\"trace_header\",\"schema_version\":1,\"clock\":\"virtual\"}\n\
                    {\"type\":\"span_start\",\"id\":1,\"t\":5,\"name\":\"a\"}\n\
                    {\"type\":\"span_end\",\"id\":1,\"t\":3}\n";
        let err = validate_trace(text).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn lenient_skips_and_counts_corrupt_lines() {
        let header = "{\"type\":\"trace_header\",\"schema_version\":1,\"clock\":\"virtual\"}\n";
        let text = format!(
            "{header}\
             {{\"type\":\"span_start\",\"id\":1,\"t\":1,\"name\":\"a\"}}\n\
             {{\"type\":\"event\",\"t\":2,\"name\":\"x\",\"level\":\"fatal\"}}\n\
             garbage not json\n\
             {{\"type\":\"event\",\"t\":3,\"name\":\"x\",\"level\":\"info\"}}\n\
             {{\"type\":\"span_end\",\"id\":1,\"t\":5}}\n"
        );
        assert!(validate_trace(&text).is_err(), "strict reader must reject");
        let lenient = validate_trace_lenient(&text).unwrap();
        assert_eq!(lenient.skipped, 2);
        assert_eq!(lenient.unclosed_spans, 0);
        assert_eq!(lenient.first_skip.as_ref().unwrap().0, 3);
        assert_eq!(lenient.summary.span("a").unwrap().total, 4);
        assert_eq!(lenient.summary.event("x").unwrap().count, 1);
    }

    #[test]
    fn lenient_tolerates_truncation() {
        // A trace cut off mid-run: the last span never ends.
        let text = "{\"type\":\"trace_header\",\"schema_version\":1,\"clock\":\"virtual\"}\n\
                    {\"type\":\"span_start\",\"id\":1,\"t\":1,\"name\":\"a\"}\n\
                    {\"type\":\"span_start\",\"id\":2,\"t\":2,\"name\":\"b\"}\n\
                    {\"type\":\"span_end\",\"id\":2,\"t\":3}\n";
        assert!(validate_trace(text).is_err(), "strict reader must reject");
        let lenient = validate_trace_lenient(text).unwrap();
        assert_eq!(lenient.skipped, 0);
        assert_eq!(lenient.unclosed_spans, 1);
        assert_eq!(lenient.summary.span("b").unwrap().count, 1);
        assert!(lenient.summary.span("a").is_none(), "partial span time is dropped");
    }

    #[test]
    fn lenient_still_rejects_bad_headers() {
        assert!(validate_trace_lenient("").is_err());
        assert!(validate_trace_lenient("not json\n").is_err());
        assert!(validate_trace_lenient("{\"type\":\"event\",\"t\":1}\n").is_err());
    }

    #[test]
    fn lenient_matches_strict_on_clean_traces() {
        let jsonl = sample_trace();
        let strict = validate_trace(&jsonl).unwrap();
        let lenient = validate_trace_lenient(&jsonl).unwrap();
        assert_eq!(lenient.skipped, 0);
        assert_eq!(lenient.unclosed_spans, 0);
        assert_eq!(lenient.summary.records, strict.records);
        assert_eq!(lenient.summary.spans.len(), strict.spans.len());
    }

    #[test]
    fn renders_registry_export_with_engine_counters() {
        let obs = Obs::detached();
        let reg = obs.registry();
        reg.counter("ira.cut_rounds").add(7);
        reg.counter("sep.pool_hits").add(3);
        reg.counter("sep.pool_scans").add(5);
        reg.counter("sep.cuts_batched").add(4);
        reg.counter("sep.seeds_pruned").add(11);
        reg.gauge("lp.rows").set(42);
        let text = render_metrics(&reg.to_json()).unwrap();
        for needle in [
            "ira.cut_rounds",
            "sep.pool_hits",
            "sep.pool_scans",
            "sep.cuts_batched",
            "sep.seeds_pruned",
            "lp.rows",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(text.contains("11"), "counter values render");
    }

    #[test]
    fn render_metrics_rejects_malformed_documents() {
        assert!(render_metrics("not json").is_err());
        assert!(render_metrics("{\"counters\": 3}").is_err());
        assert!(render_metrics("{\"counters\": {\"a\": \"x\"}}").is_err());
    }

    fn worker_trace(spans: &[&str]) -> String {
        let obs = Obs::with_trace(Clock::virtual_ticks());
        let guard = install(obs.clone());
        for name in spans {
            let _s = span(name);
            event("job.done", vec![field("name", *name)]);
        }
        drop(guard);
        obs.trace_jsonl()
    }

    #[test]
    fn merge_produces_a_valid_trace_with_worker_tags() {
        let a = worker_trace(&["solve-a", "solve-b"]);
        let b = worker_trace(&["solve-c"]);
        let merged = merge_traces(&[("w0".to_string(), a), ("w1".to_string(), b)]).unwrap();
        let summary = validate_trace(&merged).expect("merged trace must validate strictly");
        assert_eq!(summary.clock, "virtual");
        assert_eq!(summary.span("solve-a").unwrap().count, 1);
        assert_eq!(summary.span("solve-c").unwrap().count, 1);
        assert_eq!(summary.event("job.done").unwrap().count, 3);
        assert!(merged.contains("\"merged_from\":2"), "{merged}");
        assert!(merged.contains("\"w\":\"w0\"") && merged.contains("\"w\":\"w1\""));
    }

    #[test]
    fn merge_is_deterministic_and_order_stable() {
        // Two workers whose virtual timestamps collide on every tick: the
        // (t, input index, line order) sort must fully decide the layout.
        let a = worker_trace(&["x"]);
        let b = worker_trace(&["y"]);
        let inputs = [("w0".to_string(), a), ("w1".to_string(), b)];
        let once = merge_traces(&inputs).unwrap();
        let twice = merge_traces(&inputs).unwrap();
        assert_eq!(once, twice, "same inputs must merge byte-identically");
        // w0's records win ties, so "x" must appear before "y".
        assert!(once.find("\"x\"").unwrap() < once.find("\"y\"").unwrap());
    }

    #[test]
    fn merge_remaps_colliding_span_ids() {
        // Both single-worker traces start their id sequence at the same
        // point; a naive concatenation would reuse ids.
        let a = worker_trace(&["a"]);
        let b = worker_trace(&["b"]);
        let merged = merge_traces(&[("w0".to_string(), a), ("w1".to_string(), b)]).unwrap();
        let summary = validate_trace(&merged).unwrap();
        assert_eq!(summary.span("a").unwrap().count, 1);
        assert_eq!(summary.span("b").unwrap().count, 1);
    }

    #[test]
    fn merge_preserves_parent_links_within_a_worker() {
        let obs = Obs::with_trace(Clock::virtual_ticks());
        let guard = install(obs.clone());
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        drop(guard);
        let nested = obs.trace_jsonl();
        let flat = worker_trace(&["flat"]);
        let merged = merge_traces(&[("w0".to_string(), nested), ("w1".to_string(), flat)]).unwrap();
        let summary = validate_trace(&merged).unwrap();
        let outer = summary.span("outer").unwrap();
        assert!(outer.self_time < outer.total, "inner must still nest under outer");
    }

    #[test]
    fn merge_rejects_mixed_clocks_and_corrupt_lines() {
        let virt = worker_trace(&["a"]);
        let wall = "{\"type\":\"trace_header\",\"schema_version\":1,\"clock\":\"wall\"}\n";
        let err =
            merge_traces(&[("w0".to_string(), virt.clone()), ("w1".to_string(), wall.to_string())])
                .unwrap_err();
        assert!(err.contains("clock"), "{err}");
        let err = merge_traces(&[(
            "w0".to_string(),
            format!("{}garbage\n", virt.lines().next().unwrap().to_string() + "\n"),
        )])
        .unwrap_err();
        assert!(err.contains("w0") && err.contains("line 2"), "{err}");
        assert!(merge_traces(&[]).is_err());
    }

    #[test]
    fn merged_truncated_traces_stay_reportable() {
        // A crashed worker's trace may end mid-span; the merge keeps it and
        // the lenient reader accounts for it.
        let healthy = worker_trace(&["ok"]);
        let truncated = "{\"type\":\"trace_header\",\"schema_version\":1,\"clock\":\"virtual\"}\n\
                         {\"type\":\"span_start\",\"id\":1,\"t\":1,\"name\":\"dead\"}\n";
        let merged =
            merge_traces(&[("w0".to_string(), healthy), ("w1".to_string(), truncated.to_string())])
                .unwrap();
        let lenient = validate_trace_lenient(&merged).unwrap();
        assert_eq!(lenient.skipped, 0);
        assert_eq!(lenient.unclosed_spans, 1);
        assert_eq!(lenient.summary.span("ok").unwrap().count, 1);
    }

    #[test]
    fn merge_of_empty_input_set_is_rejected() {
        let err = merge_traces(&[]).unwrap_err();
        assert!(err.contains("nothing to merge"), "{err}");
    }

    #[test]
    fn merge_of_a_single_trace_validates_and_is_tagged() {
        let merged = merge_traces(&[("w0".to_string(), worker_trace(&["solo"]))]).unwrap();
        let summary = validate_trace(&merged).expect("single-input merge must validate");
        assert_eq!(summary.span("solo").unwrap().count, 1);
        assert!(merged.contains("\"merged_from\":1"), "{merged}");
        assert!(merged.contains("\"w\":\"w0\""), "{merged}");
    }

    #[test]
    fn merge_tolerates_duplicate_worker_tags() {
        // Two incarnations of the same worker slot legitimately share a
        // label; the (t, input index, line order) sort and the per-input id
        // remap must keep their records apart anyway.
        let a = worker_trace(&["first"]);
        let b = worker_trace(&["second"]);
        let merged = merge_traces(&[("w0".to_string(), a), ("w0".to_string(), b)]).unwrap();
        let summary = validate_trace(&merged).expect("duplicate tags must still merge");
        assert_eq!(summary.span("first").unwrap().count, 1);
        assert_eq!(summary.span("second").unwrap().count, 1);
        assert_eq!(merged.matches("\"w\":\"w0\"").count(), summary.records);
    }

    #[test]
    fn merge_remaps_id_collisions_across_many_workers() {
        // Four workers all start their id sequence at 1 and nest spans, so
        // every raw id collides with every other input. Strict validation
        // of the merge proves the remap kept ids unique and parent links
        // intra-worker.
        let nested = || {
            let obs = Obs::with_trace(Clock::virtual_ticks());
            let guard = install(obs.clone());
            {
                let _outer = span("outer");
                let _inner = span("inner");
            }
            drop(guard);
            obs.trace_jsonl()
        };
        let inputs: Vec<(String, String)> = (0..4).map(|w| (format!("w{w}"), nested())).collect();
        let merged = merge_traces(&inputs).unwrap();
        let summary = validate_trace(&merged).expect("4-way id collision must remap cleanly");
        assert_eq!(summary.span("outer").unwrap().count, 4);
        assert_eq!(summary.span("inner").unwrap().count, 4);
        let outer = summary.span("outer").unwrap();
        assert!(outer.self_time < outer.total, "nesting survives the remap");
    }

    #[test]
    fn render_metrics_reports_every_histogram_quantile() {
        let obs = Obs::detached();
        let reg = obs.registry();
        let h = reg.histogram("svc.latency_solved_ms", &[1, 10, 100]);
        for v in [5u64, 5, 5, 5, 5, 5, 5, 5, 5, 500] {
            h.observe(v);
        }
        let g = reg.histogram("lp.pivots_per_solve", &[4, 16]);
        g.observe(3);
        reg.histogram("empty.hist", &[1]);
        let text = render_metrics(&reg.to_json()).unwrap();
        assert!(text.contains("histogram"), "{text}");
        assert!(text.contains("svc.latency_solved_ms"), "{text}");
        assert!(text.contains("lp.pivots_per_solve"), "{text}");
        let line = text.lines().find(|l| l.contains("svc.latency_solved_ms")).unwrap();
        assert!(line.contains("<=10"), "p50/p90 land in the <=10 bucket: {line}");
        assert!(line.contains(">100"), "p99 lands in the overflow bucket: {line}");
        let empty = text.lines().find(|l| l.contains("empty.hist")).unwrap();
        assert!(empty.contains('-'), "empty histograms render '-': {empty}");
    }

    #[test]
    fn render_metrics_rejects_malformed_histograms() {
        let bad = "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":{\"bounds\":[1],\
                   \"counts\":[0],\"sum\":0,\"count\":0}}}";
        let err = render_metrics(bad).unwrap_err();
        assert!(err.contains("length mismatch"), "{err}");
    }

    #[test]
    fn postmortem_renders_an_incident_timeline() {
        let obs = Obs::with_flight(Clock::virtual_ticks(), 8);
        let guard = install(obs.clone());
        {
            let _job = span_with("svc.job", vec![field("id", 3usize)]);
            warn("lp.cold_fallback", vec![field("reason", "drift")]);
        }
        obs.counter_delta("svc.retries", 1);
        drop(guard);
        let dump = obs.blackbox_jsonl("worker-crash", Some(2)).unwrap();
        let text = render_postmortem(&dump).unwrap();
        assert!(text.contains("black box: worker-crash (worker 2)"), "{text}");
        assert!(text.contains("svc.job"), "{text}");
        assert!(text.contains("event(warn)"), "{text}");
        assert!(text.contains("svc.retries +1"), "{text}");
        assert!(text.contains("1 warn(s)"), "{text}");
    }

    #[test]
    fn postmortem_rejects_traces_and_garbage() {
        let err = render_postmortem(&sample_trace()).unwrap_err();
        assert!(err.contains("blackbox_header"), "{err}");
        assert!(render_postmortem("").is_err());
        assert!(render_postmortem("not json\n").is_err());
    }

    #[test]
    fn metrics_digest_summarizes_fleet_counters() {
        let obs = Obs::detached();
        let reg = obs.registry();
        reg.counter("svc.accepted").add(12);
        reg.counter("svc.completed").add(9);
        reg.counter("svc.shed").add(2);
        reg.counter("svc.quarantined").add(1);
        reg.counter("svc.outcome.exact").add(7);
        reg.counter("svc.outcome.resumed").add(2);
        reg.counter("resilience.degrade").add(3);
        reg.counter("resilience.handback").add(1);
        let text = render_metrics(&reg.to_json()).unwrap();
        assert!(text.contains("fleet digest"), "{text}");
        assert!(text.contains("12 accepted"), "{text}");
        assert!(text.contains("exact 7, resumed 2"), "{text}");
        assert!(text.contains("3 degraded"), "{text}");
        assert!(text.contains("1 checkpoint handback"), "{text}");
    }

    #[test]
    fn metrics_digest_absent_without_fleet_counters() {
        let obs = Obs::detached();
        let reg = obs.registry();
        reg.counter("ira.cut_rounds").add(7);
        let text = render_metrics(&reg.to_json()).unwrap();
        assert!(!text.contains("fleet digest"), "{text}");
    }
}

//! Shared concurrency utilities for the MRLC workspace.
//!
//! The experiment sweeps and the LP separation oracle both fan
//! embarrassingly parallel work across cores while requiring **bitwise
//! deterministic** output: results are collected by index, so parallel and
//! serial executions are indistinguishable to callers. [`parallel_map`] is
//! the plain form; [`parallel_map_with`] additionally gives each worker
//! thread a reusable scratch value so hot loops (e.g. per-seed min-cuts)
//! can avoid per-call allocation.

use parking_lot::Mutex;

/// Maps `f` over `0..count` in parallel (one logical task per index,
/// work-split across the machine's cores with crossbeam scoped threads)
/// and returns the results in index order.
///
/// `f` must be deterministic in its index — every experiment seeds its RNG
/// from the index — so parallel and serial runs produce identical output.
pub fn parallel_map<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(count, || (), move |(), i| f(i))
}

/// Like [`parallel_map`], but each worker thread calls `init` once and
/// passes the resulting scratch value to every `f` invocation it runs.
///
/// The scratch lets workers reuse allocations (buffers, arenas, solver
/// state) across tasks. Determinism contract: `f(scratch, i)` must return
/// the same value regardless of which thread runs it or what the scratch
/// contains — scratch is an allocation cache, not carried state.
pub fn parallel_map_with<S, T, I, F>(count: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(count);
    if threads <= 1 {
        let mut scratch = init();
        return (0..count).map(|i| f(&mut scratch, i)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut scratch = init();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let value = f(&mut scratch, i);
                    results.lock().push((i, value));
                }
            });
        }
    })
    .expect("worker panicked during a parallel sweep");
    let mut collected = results.into_inner();
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = parallel_map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_serial_execution() {
        let serial: Vec<u64> = (0..37).map(|i| (i as u64).wrapping_mul(0x9E3779B9)).collect();
        let par = parallel_map(37, |i| (i as u64).wrapping_mul(0x9E3779B9));
        assert_eq!(serial, par);
    }

    #[test]
    fn scratch_is_reused_within_a_thread() {
        // The scratch buffer must arrive initialized and mutable; results
        // must not depend on reuse order.
        let out = parallel_map_with(
            64,
            || Vec::<usize>::with_capacity(8),
            |buf, i| {
                buf.clear();
                buf.extend(0..i % 5);
                buf.len() + i
            },
        );
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i % 5 + i);
        }
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        parallel_map(8, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }
}

//! Prüfer codes for rooted labelled aggregation trees (§VI-A of the paper).
//!
//! The paper extends the classical Prüfer sequence to sink-rooted data
//! aggregation trees: node labels are `0..n` with the sink labelled `0`
//! (the smallest label, so it is never removed by the encoder), encoding
//! removes the **largest**-labelled leaf each round (Algorithm 2), and the
//! decoder (Algorithm 3) reconstructs both the *decode sequence* `D` and the
//! tree edges `{(dᵢ, pᵢ)} ∪ {(d_{n−1}, d_n)}`.
//!
//! Two properties make the code useful for the distributed protocol:
//!
//! * **child counts are readable off the code** (Eq. 23):
//!   `Ch_T(v) = N_P(v)` for `v ≠ 0`, and the sink has one extra child —
//!   so every node can evaluate any node's lifetime from `P` alone;
//! * **parent changes are local splices** of the `(P, D)` pair
//!   ([`CodedTree::change_parent`]), so an update broadcast carries only the
//!   changed `(child, new_parent)` pair and every receiver deterministically
//!   derives the same new `(P', D')`.
//!
//! One fidelity note: Algorithm 3 line 8 appends `p_{n−2}` as `d_{n−1}`.
//! That matches the paper's example but is incorrect for trees where the
//! last surviving non-sink node is not `p_{n−2}` (e.g. the path `2–0–1`);
//! the generic rule used by the loop — *largest node not yet placed* — is
//! what makes encode/decode a bijection, so [`PruferCode::decode`] applies
//! the generic rule. A regression test pins both behaviours.
//!
//! # Example
//!
//! ```
//! use wsn_model::{AggregationTree, NodeId};
//! use wsn_prufer::PruferCode;
//!
//! let n = |i: usize| NodeId::new(i);
//! // A 4-node star at the sink.
//! let tree = AggregationTree::from_edges(
//!     NodeId::SINK, 4, &[(n(0), n(1)), (n(0), n(2)), (n(0), n(3))],
//! ).unwrap();
//!
//! let code = PruferCode::encode(&tree).unwrap();
//! assert_eq!(code.labels(), &[n(0), n(0)]); // the hub appears n−2 times
//! assert_eq!(code.child_count(n(0)), 3);    // Eq. 23 (+1 for the sink)
//!
//! let decoded = code.decode().unwrap();
//! assert_eq!(decoded.tree.parent(n(2)), Some(n(0)));
//! ```

use std::collections::BinaryHeap;
use wsn_model::{AggregationTree, NodeId};

/// Errors raised by encoding, decoding, or splicing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PruferError {
    /// Codes are defined for trees with at least two nodes.
    TooSmall(usize),
    /// A code entry referenced a label outside `0..n`.
    LabelOutOfRange { label: NodeId, n: usize },
    /// The root of the tree is not node 0 (the paper's extension requires
    /// the sink to carry the smallest label).
    RootNotSink(NodeId),
    /// A splice operation was invalid (would detach the root or create a
    /// cycle).
    InvalidSplice(String),
}

impl std::fmt::Display for PruferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PruferError::TooSmall(n) => {
                write!(f, "Prüfer codes need at least 2 nodes, got {n}")
            }
            PruferError::LabelOutOfRange { label, n } => {
                write!(f, "label {label} out of range for {n} nodes")
            }
            PruferError::RootNotSink(r) => {
                write!(f, "tree rooted at {r}, but the Prüfer extension requires root 0")
            }
            PruferError::InvalidSplice(msg) => write!(f, "invalid splice: {msg}"),
        }
    }
}

impl std::error::Error for PruferError {}

/// The Prüfer code `P = (p₁, …, p_{n−2})` of an `n`-node sink-rooted tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PruferCode {
    code: Vec<NodeId>,
    n: usize,
}

/// Output of [`PruferCode::decode`]: the decode sequence `D` and the
/// reconstructed tree.
#[derive(Clone, Debug)]
pub struct Decoded {
    /// The decode sequence `D = (d₁, …, d_n)`; a permutation of all labels
    /// ending with the sink `0`.
    pub sequence: Vec<NodeId>,
    /// The reconstructed aggregation tree rooted at the sink.
    pub tree: AggregationTree,
}

impl PruferCode {
    /// Encodes a tree (Algorithm 2): repeatedly remove the leaf with the
    /// largest label and append its remaining neighbour. `O(n log n)`.
    pub fn encode(tree: &AggregationTree) -> Result<Self, PruferError> {
        let n = tree.n();
        if n < 2 {
            return Err(PruferError::TooSmall(n));
        }
        if tree.root() != NodeId::SINK {
            return Err(PruferError::RootNotSink(tree.root()));
        }
        // Work on an undirected degree/neighbour view.
        let mut degree = vec![0usize; n];
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (c, p) in tree.edges() {
            degree[c.index()] += 1;
            degree[p.index()] += 1;
            adj[c.index()].push(p);
            adj[p.index()].push(c);
        }
        let mut removed = vec![false; n];
        let mut leaves: BinaryHeap<NodeId> =
            (0..n).map(NodeId::new).filter(|v| degree[v.index()] == 1).collect();
        let mut code = Vec::with_capacity(n - 2);
        for _ in 0..n.saturating_sub(2) {
            let u = leaves.pop().expect("a tree with ≥3 remaining nodes has ≥2 leaves");
            debug_assert!(!removed[u.index()]);
            let v = adj[u.index()]
                .iter()
                .copied()
                .find(|w| !removed[w.index()])
                .expect("leaf has exactly one live neighbour");
            code.push(v);
            removed[u.index()] = true;
            degree[v.index()] -= 1;
            if degree[v.index()] == 1 {
                leaves.push(v);
            }
        }
        Ok(PruferCode { code, n })
    }

    /// Creates a code from raw labels (e.g. received over the air).
    pub fn from_labels(n: usize, labels: Vec<NodeId>) -> Result<Self, PruferError> {
        if n < 2 || labels.len() != n - 2 {
            return Err(PruferError::TooSmall(n));
        }
        for &l in &labels {
            if l.index() >= n {
                return Err(PruferError::LabelOutOfRange { label: l, n });
            }
        }
        Ok(PruferCode { code: labels, n })
    }

    /// The raw sequence `(p₁, …, p_{n−2})`.
    pub fn labels(&self) -> &[NodeId] {
        &self.code
    }

    /// Number of nodes of the encoded tree.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `N_P(v)`: occurrences of `v` in the code.
    pub fn occurrences(&self, v: NodeId) -> usize {
        self.code.iter().filter(|&&p| p == v).count()
    }

    /// `Ch_T(v)` read off the code (Eq. 23): occurrences, plus one for the
    /// sink (the final edge is always adjacent to the sink).
    pub fn child_count(&self, v: NodeId) -> usize {
        self.occurrences(v) + usize::from(v == NodeId::SINK)
    }

    /// Decodes (Algorithm 3, with the line-8 fix described in the module
    /// docs): produces the decode sequence `D` and the tree. `O(n log n)`.
    pub fn decode(&self) -> Result<Decoded, PruferError> {
        let n = self.n;
        // remaining[v] = occurrences of v in the unconsumed suffix of P.
        let mut remaining = vec![0usize; n];
        for &p in &self.code {
            remaining[p.index()] += 1;
        }
        let mut used = vec![false; n];
        used[0] = true; // the sink is placed implicitly as d_n
        let mut available: BinaryHeap<NodeId> =
            (1..n).map(NodeId::new).filter(|v| remaining[v.index()] == 0).collect();
        let take_largest = |available: &mut BinaryHeap<NodeId>,
                            used: &mut [bool],
                            remaining: &[usize]|
         -> Option<NodeId> {
            while let Some(u) = available.pop() {
                if !used[u.index()] && remaining[u.index()] == 0 {
                    used[u.index()] = true;
                    return Some(u);
                }
            }
            None
        };

        let mut sequence: Vec<NodeId> = Vec::with_capacity(n);
        let mut parents: Vec<Option<NodeId>> = vec![None; n];
        for i in 0..n - 2 {
            let u = take_largest(&mut available, &mut used, &remaining)
                .ok_or_else(|| PruferError::InvalidSplice("decode exhausted".into()))?;
            sequence.push(u);
            let p = self.code[i];
            parents[u.index()] = Some(p);
            remaining[p.index()] -= 1;
            if remaining[p.index()] == 0 && !used[p.index()] {
                available.push(p);
            }
        }
        // d_{n−1}: the one remaining non-sink node (generic rule); its parent
        // is the sink.
        let last = take_largest(&mut available, &mut used, &remaining)
            .ok_or_else(|| PruferError::InvalidSplice("decode exhausted at tail".into()))?;
        sequence.push(last);
        parents[last.index()] = Some(NodeId::SINK);
        sequence.push(NodeId::SINK);

        let tree = AggregationTree::from_parents(NodeId::SINK, parents).map_err(|e| {
            PruferError::InvalidSplice(format!("decoded edges are not a tree: {e}"))
        })?;
        Ok(Decoded { sequence, tree })
    }
}

/// The joint `(P, D)` state every sensor maintains in the distributed
/// protocol (§VI-B).
///
/// The pair encodes the tree directly — `pᵢ` is the parent of `dᵢ` and
/// `d_{n−1}`'s parent is the sink `d_n = 0` — so parent lookups, component
/// extraction, and parent-change splices are all local `O(n)` operations,
/// matching the paper's per-sensor cost claim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodedTree {
    /// `P` extended by one: `p[i]` is the parent of `d[i]` for
    /// `i = 0..n−1` (the broadcast `P` is `p[0..n−2]`; `p[n−2]` is always
    /// the sink and is transmitted implicitly).
    p: Vec<NodeId>,
    /// `D`: a permutation of the labels ending with the sink.
    d: Vec<NodeId>,
}

impl CodedTree {
    /// Builds the coded state from a tree (encode, then decode to get `D`).
    pub fn from_tree(tree: &AggregationTree) -> Result<Self, PruferError> {
        let code = PruferCode::encode(tree)?;
        let decoded = code.decode()?;
        let n = tree.n();
        let mut p: Vec<NodeId> = Vec::with_capacity(n - 1);
        p.extend_from_slice(code.labels());
        p.push(NodeId::SINK); // parent of d_{n−1}
        let d = decoded.sequence;
        debug_assert_eq!(d.len(), n);
        // The decoded tree must equal the input tree edge-for-edge.
        debug_assert!(tree.edges().all(|(c, par)| decoded.tree.parent(c) == Some(par)));
        Ok(CodedTree { p, d })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// The broadcastable Prüfer portion `P = (p₁, …, p_{n−2})`.
    pub fn prufer_labels(&self) -> &[NodeId] {
        &self.p[..self.p.len() - 1]
    }

    /// The decode sequence `D`.
    pub fn sequence(&self) -> &[NodeId] {
        &self.d
    }

    /// Parent of `v`, or `None` for the sink.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        if v == NodeId::SINK {
            return None;
        }
        self.d.iter().position(|&x| x == v).map(|i| self.p[i])
    }

    /// `Ch_T(v)` from the coded state.
    pub fn child_count(&self, v: NodeId) -> usize {
        self.p.iter().filter(|&&x| x == v).count()
    }

    /// Materializes the tree.
    pub fn to_tree(&self) -> AggregationTree {
        let n = self.n();
        let mut parents: Vec<Option<NodeId>> = vec![None; n];
        for (i, &child) in self.d.iter().enumerate().take(n - 1) {
            parents[child.index()] = Some(self.p[i]);
        }
        AggregationTree::from_parents(NodeId::SINK, parents)
            .expect("CodedTree invariant: (P, D) always encodes a tree")
    }

    /// Nodes of the component that would contain `v` if `v`'s parent edge
    /// were removed — i.e. `v`'s subtree — listed in `D` order (the order
    /// the splice preserves).
    pub fn component_of(&self, v: NodeId) -> Vec<NodeId> {
        let n = self.n();
        let mut in_comp = vec![false; n];
        in_comp[v.index()] = true;
        // D order is not topological, so fixpoint over parent pointers;
        // each node's membership equals its parent's (with v forced in).
        // Two passes of "child of member is member" suffice if children come
        // after parents in D... they do not in general, so iterate to
        // fixpoint (≤ depth iterations, each O(n)).
        loop {
            let mut changed = false;
            for (i, &child) in self.d.iter().enumerate().take(n - 1) {
                if !in_comp[child.index()] && in_comp[self.p[i].index()] && child != NodeId::SINK {
                    in_comp[child.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.d.iter().copied().filter(|w| in_comp[w.index()]).collect()
    }

    /// The paper's parent-change splice (§VI-B.1, Fig. 5b): `child` moves
    /// from its current parent to `new_parent`.
    ///
    /// `child`'s component (its subtree, in `D` order) moves to the front of
    /// `D'`; `P'` is rebuilt as the parents of `d'₁ … d'_{n−1}` with the
    /// single change applied. If the node in position `n−1` would not be a
    /// child of the sink, the nearest sink-child is swapped into that slot
    /// to restore the representation invariant.
    ///
    /// Fails if `child` is the sink or `new_parent` lies inside `child`'s
    /// subtree (cycle).
    pub fn change_parent(&mut self, child: NodeId, new_parent: NodeId) -> Result<(), PruferError> {
        let n = self.n();
        if child == NodeId::SINK {
            return Err(PruferError::InvalidSplice("the sink has no parent".into()));
        }
        if new_parent.index() >= n || child.index() >= n {
            return Err(PruferError::LabelOutOfRange {
                label: if new_parent.index() >= n { new_parent } else { child },
                n,
            });
        }
        if child == new_parent {
            return Err(PruferError::InvalidSplice(format!("{child} cannot parent itself")));
        }
        let comp = self.component_of(child);
        if comp.contains(&new_parent) {
            return Err(PruferError::InvalidSplice(format!(
                "new parent {new_parent} lies in the subtree of {child}"
            )));
        }

        // Parent map with the change applied.
        let mut parent_of = vec![NodeId::SINK; n];
        for (i, &c) in self.d.iter().enumerate().take(n - 1) {
            parent_of[c.index()] = self.p[i];
        }
        parent_of[child.index()] = new_parent;

        // New D: component first (its D order), then the rest (D order).
        let in_comp: Vec<bool> = {
            let mut f = vec![false; n];
            for &w in &comp {
                f[w.index()] = true;
            }
            f
        };
        let mut new_d: Vec<NodeId> = comp.clone();
        new_d.extend(self.d.iter().copied().filter(|w| !in_comp[w.index()]));
        debug_assert_eq!(new_d.len(), n);
        debug_assert_eq!(*new_d.last().unwrap(), NodeId::SINK);

        // Restore the invariant: d'_{n−1} must be a child of the sink.
        if parent_of[new_d[n - 2].index()] != NodeId::SINK {
            let swap_pos = (0..n - 2)
                .rev()
                .find(|&i| parent_of[new_d[i].index()] == NodeId::SINK)
                .expect("the sink always has at least one child");
            new_d.swap(swap_pos, n - 2);
        }

        let new_p: Vec<NodeId> = new_d[..n - 1].iter().map(|&c| parent_of[c.index()]).collect();
        self.d = new_d;
        self.p = new_p;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// The paper's Fig. 5(a) 9-node tree.
    fn fig5_tree() -> AggregationTree {
        let edges = [
            (n(0), n(7)),
            (n(0), n(4)),
            (n(0), n(8)),
            (n(4), n(3)),
            (n(4), n(2)),
            (n(2), n(6)),
            (n(8), n(5)),
            (n(8), n(1)),
        ];
        AggregationTree::from_edges(n(0), 9, &edges).unwrap()
    }

    #[test]
    fn fig5_encoding_matches_paper() {
        let code = PruferCode::encode(&fig5_tree()).unwrap();
        let want: Vec<NodeId> = [0, 2, 8, 4, 4, 0, 8].iter().map(|&i| n(i)).collect();
        assert_eq!(code.labels(), &want[..]);
    }

    #[test]
    fn fig5_decoding_matches_paper() {
        let code =
            PruferCode::from_labels(9, [0, 2, 8, 4, 4, 0, 8].iter().map(|&i| n(i)).collect())
                .unwrap();
        let decoded = code.decode().unwrap();
        let want: Vec<NodeId> = [7, 6, 5, 3, 2, 4, 1, 8, 0].iter().map(|&i| n(i)).collect();
        assert_eq!(decoded.sequence, want);
        // Tree must equal Fig. 5(a).
        let orig = fig5_tree();
        for i in 0..9 {
            assert_eq!(decoded.tree.parent(n(i)), orig.parent(n(i)), "parent of {i}");
        }
    }

    #[test]
    fn eq23_child_counts() {
        let tree = fig5_tree();
        let code = PruferCode::encode(&tree).unwrap();
        for i in 0..9 {
            assert_eq!(code.child_count(n(i)), tree.num_children(n(i)), "child count of {i}");
        }
        // The paper's observation: 0, 4, 8 appear twice; 2 once.
        assert_eq!(code.occurrences(n(0)), 2);
        assert_eq!(code.occurrences(n(4)), 2);
        assert_eq!(code.occurrences(n(8)), 2);
        assert_eq!(code.occurrences(n(2)), 1);
        // Sink has one more child than its occurrences.
        assert_eq!(code.child_count(n(0)), 3);
    }

    #[test]
    fn paper_line8_counterexample_is_handled() {
        // Path 2–0–1: leaves {1, 2}; encode removes 2 (largest), neighbour 0,
        // so P = (0). The surviving non-sink node is 1, but p_{n−2} = 0 —
        // the paper's line 8 would emit D = (2, 0, 0). The generic rule
        // yields the correct D = (2, 1, 0).
        let edges = [(n(0), n(1)), (n(0), n(2))];
        let tree = AggregationTree::from_edges(n(0), 3, &edges).unwrap();
        let code = PruferCode::encode(&tree).unwrap();
        assert_eq!(code.labels(), &[n(0)]);
        let decoded = code.decode().unwrap();
        assert_eq!(decoded.sequence, vec![n(2), n(1), n(0)]);
        assert_eq!(decoded.tree.parent(n(1)), Some(n(0)));
        assert_eq!(decoded.tree.parent(n(2)), Some(n(0)));
    }

    #[test]
    fn two_node_tree() {
        let tree = AggregationTree::from_edges(n(0), 2, &[(n(0), n(1))]).unwrap();
        let code = PruferCode::encode(&tree).unwrap();
        assert!(code.labels().is_empty());
        let decoded = code.decode().unwrap();
        assert_eq!(decoded.sequence, vec![n(1), n(0)]);
        assert_eq!(decoded.tree.parent(n(1)), Some(n(0)));
    }

    #[test]
    fn encode_rejects_tiny_and_misrooted() {
        let t1 = AggregationTree::from_parents(n(0), vec![None]).unwrap();
        assert_eq!(PruferCode::encode(&t1), Err(PruferError::TooSmall(1)));
        let t2 = AggregationTree::from_parents(n(1), vec![Some(n(1)), None]).unwrap();
        assert_eq!(PruferCode::encode(&t2), Err(PruferError::RootNotSink(n(1))));
    }

    #[test]
    fn from_labels_validation() {
        assert!(PruferCode::from_labels(4, vec![n(1), n(2)]).is_ok());
        assert!(PruferCode::from_labels(4, vec![n(1)]).is_err()); // wrong length
        assert!(matches!(
            PruferCode::from_labels(4, vec![n(1), n(9)]),
            Err(PruferError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn coded_tree_roundtrip() {
        let tree = fig5_tree();
        let ct = CodedTree::from_tree(&tree).unwrap();
        let back = ct.to_tree();
        for i in 0..9 {
            assert_eq!(back.parent(n(i)), tree.parent(n(i)));
            assert_eq!(ct.parent(n(i)), tree.parent(n(i)));
            assert_eq!(ct.child_count(n(i)), tree.num_children(n(i)));
        }
    }

    #[test]
    fn component_matches_subtree() {
        let tree = fig5_tree();
        let ct = CodedTree::from_tree(&tree).unwrap();
        let mut comp = ct.component_of(n(4));
        comp.sort();
        assert_eq!(comp, vec![n(2), n(3), n(4), n(6)]);
        // Paper: "4 first finds its connected component without (4, 0) and it
        // is (6, 3, 2, 4)" — D order.
        assert_eq!(ct.component_of(n(4)), vec![n(6), n(3), n(2), n(4)]);
    }

    #[test]
    fn fig5b_parent_change_matches_paper() {
        // Fig. 5(b): node 4 changes its parent from 0 to 7.
        let mut ct = CodedTree::from_tree(&fig5_tree()).unwrap();
        ct.change_parent(n(4), n(7)).unwrap();
        let want_d: Vec<NodeId> = [6, 3, 2, 4, 7, 5, 1, 8, 0].iter().map(|&i| n(i)).collect();
        assert_eq!(ct.sequence(), &want_d[..]);
        let want_p: Vec<NodeId> = [2, 4, 4, 7, 0, 8, 8].iter().map(|&i| n(i)).collect();
        assert_eq!(ct.prufer_labels(), &want_p[..]);
        // And the materialized tree reflects the change.
        let t = ct.to_tree();
        assert_eq!(t.parent(n(4)), Some(n(7)));
        assert_eq!(t.num_children(n(7)), 1);
    }

    #[test]
    fn change_parent_rejects_cycles_and_root() {
        let mut ct = CodedTree::from_tree(&fig5_tree()).unwrap();
        assert!(ct.change_parent(n(4), n(6)).is_err()); // 6 is in 4's subtree
        assert!(ct.change_parent(n(0), n(4)).is_err()); // sink
        assert!(ct.change_parent(n(4), n(4)).is_err()); // self
        assert!(matches!(ct.change_parent(n(4), n(99)), Err(PruferError::LabelOutOfRange { .. })));
    }

    #[test]
    fn change_parent_repairs_tail_invariant() {
        // Move the subtree containing the old d_{n−1} slot holder and verify
        // the invariant (d'_{n−1} is a child of the sink) is restored.
        let mut ct = CodedTree::from_tree(&fig5_tree()).unwrap();
        // d_{n−1} = 8 originally. Move 8 under 7: component of 8 = {5,1,8}.
        ct.change_parent(n(8), n(7)).unwrap();
        let d = ct.sequence().to_vec();
        let second_last = d[d.len() - 2];
        assert_eq!(ct.parent(second_last), Some(n(0)), "tail invariant broken");
        let t = ct.to_tree();
        assert_eq!(t.parent(n(8)), Some(n(7)));
    }

    #[test]
    fn chained_changes_stay_consistent() {
        let mut ct = CodedTree::from_tree(&fig5_tree()).unwrap();
        ct.change_parent(n(4), n(7)).unwrap();
        ct.change_parent(n(6), n(3)).unwrap();
        ct.change_parent(n(1), n(5)).unwrap();
        let t = ct.to_tree();
        assert_eq!(t.parent(n(4)), Some(n(7)));
        assert_eq!(t.parent(n(6)), Some(n(3)));
        assert_eq!(t.parent(n(1)), Some(n(5)));
        // Child counts still consistent with the coded state.
        for i in 0..9 {
            assert_eq!(ct.child_count(n(i)), t.num_children(n(i)), "node {i}");
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Random parent vector: node i's parent is a uniformly random
        /// smaller-labelled node, which always yields a valid tree rooted
        /// at 0 (and exercises varied shapes).
        fn arb_tree() -> impl Strategy<Value = AggregationTree> {
            (2usize..40).prop_flat_map(|nn| {
                let parents: Vec<BoxedStrategy<usize>> = (1..nn).map(|i| (0..i).boxed()).collect();
                parents.prop_map(move |ps| {
                    let mut parents: Vec<Option<NodeId>> = vec![None];
                    parents.extend(ps.into_iter().map(|p| Some(NodeId::new(p))));
                    AggregationTree::from_parents(NodeId::SINK, parents).unwrap()
                })
            })
        }

        proptest! {
            #[test]
            fn encode_decode_roundtrip(tree in arb_tree()) {
                let code = PruferCode::encode(&tree).unwrap();
                prop_assert_eq!(code.labels().len(), tree.n() - 2);
                let decoded = code.decode().unwrap();
                for i in 0..tree.n() {
                    prop_assert_eq!(decoded.tree.parent(n(i)), tree.parent(n(i)));
                }
                // D is a permutation ending at the sink.
                let mut d = decoded.sequence.clone();
                prop_assert_eq!(*d.last().unwrap(), NodeId::SINK);
                d.sort();
                let all: Vec<NodeId> = (0..tree.n()).map(NodeId::new).collect();
                prop_assert_eq!(d, all);
            }

            #[test]
            fn eq23_holds(tree in arb_tree()) {
                let code = PruferCode::encode(&tree).unwrap();
                for i in 0..tree.n() {
                    prop_assert_eq!(code.child_count(n(i)), tree.num_children(n(i)));
                }
            }

            #[test]
            fn splice_equals_reattach(
                tree in arb_tree(),
                child_seed in any::<u32>(),
                parent_seed in any::<u32>(),
            ) {
                let nn = tree.n();
                let child = n(1 + (child_seed as usize) % (nn - 1));
                let parent = n((parent_seed as usize) % nn);
                let mut ct = CodedTree::from_tree(&tree).unwrap();
                let mut reference = tree.clone();
                let splice = ct.change_parent(child, parent);
                let direct = reference.reattach(child, parent);
                prop_assert_eq!(splice.is_ok(), direct.is_ok(),
                    "splice and reattach must agree on validity");
                if splice.is_ok() {
                    let t = ct.to_tree();
                    for i in 0..nn {
                        prop_assert_eq!(t.parent(n(i)), reference.parent(n(i)));
                    }
                    // Tail invariant.
                    let d = ct.sequence();
                    prop_assert_eq!(ct.parent(d[nn - 2]), Some(NodeId::SINK));
                }
            }
        }
    }
}

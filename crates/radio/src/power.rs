//! TelosB TX power levels and PowerMonitor-style trace synthesis (Fig. 3).

use crate::pathloss::standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wsn_model::energy::{IDLE_POWER_W, RECEIVE_POWER_W, SEND_POWER_W};

/// A CC2420/TelosB transmit power level (the register values the paper
/// sweeps in Fig. 2) with its output power in dBm.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TxPowerLevel {
    /// Register value (3, 7, 11, …, 31).
    pub level: u8,
    /// Output power in dBm.
    pub dbm: f64,
}

impl TxPowerLevel {
    /// The CC2420 datasheet mapping from register level to output power.
    pub const TABLE: [TxPowerLevel; 8] = [
        TxPowerLevel { level: 3, dbm: -25.0 },
        TxPowerLevel { level: 7, dbm: -15.0 },
        TxPowerLevel { level: 11, dbm: -10.0 },
        TxPowerLevel { level: 15, dbm: -7.0 },
        TxPowerLevel { level: 19, dbm: -5.0 },
        TxPowerLevel { level: 23, dbm: -3.0 },
        TxPowerLevel { level: 27, dbm: -1.0 },
        TxPowerLevel { level: 31, dbm: 0.0 },
    ];

    /// Looks up a register level (the paper uses 11, 15 and 19).
    pub fn from_level(level: u8) -> Option<TxPowerLevel> {
        Self::TABLE.iter().copied().find(|t| t.level == level)
    }
}

/// Radio state of a node at a sampling instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Transmitting packets (Fig. 3a, ≈80 mW).
    Sending,
    /// Listening / receiving (Fig. 3b, ≈60 mW).
    Receiving,
    /// Radio off; MCU + LEDs only (Fig. 3c, ≈80 µW).
    Idle,
}

impl PowerState {
    /// The mean draw of the state in watts.
    pub fn mean_power_w(self) -> f64 {
        match self {
            PowerState::Sending => SEND_POWER_W,
            PowerState::Receiving => RECEIVE_POWER_W,
            PowerState::Idle => IDLE_POWER_W,
        }
    }
}

/// A synthesized PowerMonitor trace: per-sample instantaneous power of one
/// node held in a fixed radio state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PowerTrace {
    /// The state the node was held in.
    pub state: PowerState,
    /// Sampling interval in seconds.
    pub dt: f64,
    /// Instantaneous power samples in watts.
    pub samples: Vec<f64>,
}

impl PowerTrace {
    /// Synthesizes a trace of `n` samples: the state's mean draw plus 5%
    /// multiplicative measurement noise plus, for the sending state,
    /// periodic packet bursts (the spiky structure visible in Fig. 3a).
    pub fn synthesize<R: Rng + ?Sized>(
        state: PowerState,
        n: usize,
        dt: f64,
        rng: &mut R,
    ) -> PowerTrace {
        let base = state.mean_power_w();
        let samples = (0..n)
            .map(|i| {
                let noise = 1.0 + 0.05 * standard_normal(rng);
                let burst = match state {
                    // A packet every 8 samples draws extra amplifier power,
                    // balanced by a lower floor in between.
                    PowerState::Sending => {
                        if i % 8 == 0 {
                            1.35
                        } else {
                            0.95
                        }
                    }
                    _ => 1.0,
                };
                (base * burst * noise).max(0.0)
            })
            .collect();
        PowerTrace { state, dt, samples }
    }

    /// Average power over the trace, watts.
    pub fn mean_power_w(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Total energy of the trace, joules.
    pub fn energy_j(&self) -> f64 {
        self.samples.iter().sum::<f64>() * self.dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_table_covers_paper_levels() {
        for level in [11u8, 15, 19] {
            let t = TxPowerLevel::from_level(level).unwrap();
            assert!(t.dbm <= 0.0);
        }
        assert!(TxPowerLevel::from_level(12).is_none());
        // Monotone in level.
        for w in TxPowerLevel::TABLE.windows(2) {
            assert!(w[0].dbm < w[1].dbm);
        }
    }

    #[test]
    fn trace_means_match_fig3() {
        let mut rng = StdRng::seed_from_u64(3);
        let send = PowerTrace::synthesize(PowerState::Sending, 8000, 1e-3, &mut rng);
        let recv = PowerTrace::synthesize(PowerState::Receiving, 8000, 1e-3, &mut rng);
        let idle = PowerTrace::synthesize(PowerState::Idle, 8000, 1e-3, &mut rng);
        // Sending ≈ 80 mW (within 10%: bursts average to 1.0).
        assert!((send.mean_power_w() - 0.080).abs() < 0.008, "{}", send.mean_power_w());
        assert!((recv.mean_power_w() - 0.060).abs() < 0.004, "{}", recv.mean_power_w());
        assert!((idle.mean_power_w() - 80e-6).abs() < 8e-6, "{}", idle.mean_power_w());
        // Orders of magnitude as in the paper: idle is ~1000× cheaper.
        assert!(send.mean_power_w() / idle.mean_power_w() > 500.0);
    }

    #[test]
    fn energy_integrates_power() {
        let trace = PowerTrace { state: PowerState::Idle, dt: 0.5, samples: vec![2.0, 4.0] };
        assert!((trace.energy_j() - 3.0).abs() < 1e-12);
        let empty = PowerTrace { state: PowerState::Idle, dt: 0.5, samples: vec![] };
        assert_eq!(empty.mean_power_w(), 0.0);
    }

    #[test]
    fn sending_trace_is_spiky() {
        let mut rng = StdRng::seed_from_u64(9);
        let send = PowerTrace::synthesize(PowerState::Sending, 64, 1e-3, &mut rng);
        let max = send.samples.iter().cloned().fold(0.0, f64::max);
        let min = send.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.2, "bursts should be visible: {min}..{max}");
    }
}

//! Time-varying link quality: the processes behind "a tree-link gets worse
//! or a non-tree link gets better" (§VI).
//!
//! Two standard models:
//!
//! * [`GilbertElliott`] — the classic two-state burst-loss channel: a Good
//!   state with high PRR and a Bad state with low PRR, with geometric
//!   sojourn times. Captures the abrupt degradations the paper's
//!   link-worse trigger responds to.
//! * [`QualityDrift`] — a mean-reverting AR(1) (discrete
//!   Ornstein–Uhlenbeck) walk on the logit of the PRR: slow environmental
//!   drift that both degrades tree links and recovers non-tree links,
//!   exercising the ILU path.

use crate::pathloss::standard_normal;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use wsn_model::Prr;

/// Two-state burst-loss channel.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// PRR while in the Good state.
    pub good_prr: f64,
    /// PRR while in the Bad state.
    pub bad_prr: f64,
    /// Per-step probability of Good → Bad.
    pub p_good_to_bad: f64,
    /// Per-step probability of Bad → Good.
    pub p_bad_to_good: f64,
}

impl Default for GilbertElliott {
    fn default() -> Self {
        GilbertElliott { good_prr: 0.99, bad_prr: 0.30, p_good_to_bad: 0.02, p_bad_to_good: 0.25 }
    }
}

/// Live state of one Gilbert–Elliott channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeState {
    /// High-quality regime.
    Good,
    /// Burst-loss regime.
    Bad,
}

/// A running Gilbert–Elliott channel.
#[derive(Clone, Debug)]
pub struct GeChannel {
    params: GilbertElliott,
    state: GeState,
}

impl GeChannel {
    /// Starts a channel in the Good state.
    pub fn new(params: GilbertElliott) -> Self {
        assert!((0.0..=1.0).contains(&params.p_good_to_bad));
        assert!((0.0..=1.0).contains(&params.p_bad_to_good));
        GeChannel { params, state: GeState::Good }
    }

    /// Current state.
    pub fn state(&self) -> GeState {
        self.state
    }

    /// Advances one step and returns the current PRR.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Prr {
        let flip: f64 = rng.random();
        self.state = match self.state {
            GeState::Good if flip < self.params.p_good_to_bad => GeState::Bad,
            GeState::Bad if flip < self.params.p_bad_to_good => GeState::Good,
            s => s,
        };
        let q = match self.state {
            GeState::Good => self.params.good_prr,
            GeState::Bad => self.params.bad_prr,
        };
        Prr::clamped(q).expect("parameters are finite")
    }

    /// Stationary probability of the Good state.
    pub fn stationary_good(&self) -> f64 {
        let GilbertElliott { p_good_to_bad: pgb, p_bad_to_good: pbg, .. } = self.params;
        if pgb + pbg == 0.0 {
            1.0
        } else {
            pbg / (pgb + pbg)
        }
    }

    /// Long-run average PRR.
    pub fn stationary_prr(&self) -> f64 {
        let pg = self.stationary_good();
        pg * self.params.good_prr + (1.0 - pg) * self.params.bad_prr
    }
}

/// Mean-reverting logit-space drift of a link's PRR.
#[derive(Clone, Debug)]
pub struct QualityDrift {
    /// Mean-reversion strength per step, in `(0, 1]`.
    pub reversion: f64,
    /// Per-step noise standard deviation (logit units).
    pub sigma: f64,
    /// The long-run mean quality (logit units).
    anchor_logit: f64,
    /// Current state (logit units).
    state_logit: f64,
}

fn logit(q: f64) -> f64 {
    let q = q.clamp(1e-6, 1.0 - 1e-6);
    (q / (1.0 - q)).ln()
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl QualityDrift {
    /// Creates a drift anchored at (and starting from) `initial`.
    pub fn new(initial: Prr, reversion: f64, sigma: f64) -> Self {
        assert!(reversion > 0.0 && reversion <= 1.0);
        assert!(sigma >= 0.0);
        let l = logit(initial.value());
        QualityDrift { reversion, sigma, anchor_logit: l, state_logit: l }
    }

    /// Advances one step and returns the new PRR.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Prr {
        let noise = self.sigma * standard_normal(rng);
        self.state_logit += self.reversion * (self.anchor_logit - self.state_logit) + noise;
        Prr::clamped(sigmoid(self.state_logit)).expect("sigmoid is in (0, 1)")
    }

    /// Current PRR without advancing.
    pub fn current(&self) -> Prr {
        Prr::clamped(sigmoid(self.state_logit)).expect("sigmoid is in (0, 1)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ge_stationary_distribution_matches_simulation() {
        let params = GilbertElliott::default();
        let mut ch = GeChannel::new(params);
        let mut rng = StdRng::seed_from_u64(1);
        let steps = 200_000;
        let mut good = 0usize;
        let mut sum = 0.0;
        for _ in 0..steps {
            let q = ch.step(&mut rng);
            if ch.state() == GeState::Good {
                good += 1;
            }
            sum += q.value();
        }
        let pg = good as f64 / steps as f64;
        assert!(
            (pg - ch.stationary_good()).abs() < 0.01,
            "empirical P(Good) {pg} vs analytic {}",
            ch.stationary_good()
        );
        assert!((sum / steps as f64 - ch.stationary_prr()).abs() < 0.01);
    }

    #[test]
    fn ge_produces_bursts() {
        let mut ch = GeChannel::new(GilbertElliott::default());
        let mut rng = StdRng::seed_from_u64(2);
        // Expected bad-burst length = 1/p_bad_to_good = 4; observe at least
        // one burst of length ≥ 2 over a long run.
        let mut run = 0usize;
        let mut longest = 0usize;
        for _ in 0..10_000 {
            ch.step(&mut rng);
            if ch.state() == GeState::Bad {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        assert!(longest >= 2, "no bursts observed");
    }

    #[test]
    fn drift_reverts_to_anchor() {
        let mut d = QualityDrift::new(Prr::new(0.95).unwrap(), 0.2, 0.0);
        // Knock it down, then let it recover deterministically (σ = 0).
        d.state_logit = logit(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            d.step(&mut rng);
        }
        assert!(
            (d.current().value() - 0.95).abs() < 0.01,
            "did not revert: {}",
            d.current().value()
        );
    }

    #[test]
    fn drift_stays_in_unit_interval() {
        let mut d = QualityDrift::new(Prr::new(0.9).unwrap(), 0.05, 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5000 {
            let q = d.step(&mut rng).value();
            assert!((0.0..=1.0).contains(&q));
        }
    }

    #[test]
    fn drift_wanders_with_noise() {
        let mut d = QualityDrift::new(Prr::new(0.9).unwrap(), 0.02, 0.4);
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..2000).map(|_| d.step(&mut rng).value()).collect();
        let min = samples.iter().cloned().fold(1.0, f64::min);
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.05, "drift too static: {min}..{max}");
    }

    #[test]
    #[should_panic]
    fn invalid_reversion_rejected() {
        QualityDrift::new(Prr::new(0.9).unwrap(), 0.0, 0.1);
    }
}

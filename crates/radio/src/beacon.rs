//! Beacon-based PRR estimation (Eq. 2): `q̂ = N_r / N_s`.

use rand::{Rng, RngExt};
use wsn_model::Prr;

/// Estimates a link's PRR the way the paper's deployment does: broadcast
/// `rounds` beacons over a link whose true reception probability is
/// `true_prr`, and return the observed ratio of received to sent packets.
pub fn estimate_prr<R: Rng + ?Sized>(true_prr: Prr, rounds: usize, rng: &mut R) -> Prr {
    assert!(rounds > 0, "at least one beacon round is required");
    let q = true_prr.value();
    let received = (0..rounds).filter(|_| rng.random::<f64>() < q).count();
    Prr::new(received as f64 / rounds as f64).expect("ratio is in [0, 1]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_converges_to_truth() {
        let mut rng = StdRng::seed_from_u64(21);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let truth = Prr::new(q).unwrap();
            let est = estimate_prr(truth, 100_000, &mut rng);
            assert!((est.value() - q).abs() < 0.01, "estimate {} for truth {q}", est.value());
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(estimate_prr(Prr::new(0.0).unwrap(), 1000, &mut rng).value(), 0.0);
        assert_eq!(estimate_prr(Prr::new(1.0).unwrap(), 1000, &mut rng).value(), 1.0);
    }

    #[test]
    fn thousand_rounds_gives_percent_accuracy() {
        // The paper uses 1000 beacon rounds; the binomial standard error at
        // q = 0.5 is √(0.25/1000) ≈ 1.6%.
        let mut rng = StdRng::seed_from_u64(7);
        let truth = Prr::new(0.5).unwrap();
        let mut worst: f64 = 0.0;
        for _ in 0..50 {
            let est = estimate_prr(truth, 1000, &mut rng);
            worst = worst.max((est.value() - 0.5).abs());
        }
        assert!(worst < 0.08, "worst deviation {worst}");
    }

    #[test]
    #[should_panic(expected = "at least one beacon round")]
    fn zero_rounds_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        estimate_prr(Prr::PERFECT, 0, &mut rng);
    }
}

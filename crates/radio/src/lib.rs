//! Link-quality substrate: a synthetic replacement for the paper's TelosB
//! measurements.
//!
//! The paper grounds its model in testbed measurements: PRR-vs-distance
//! curves at several TX power levels (Fig. 2) and per-state power draws
//! from a Monsoon PowerMonitor (Fig. 3). Without the hardware we substitute
//! the standard *transitional region* channel model (log-distance path loss
//! with log-normal shadowing feeding an SNR→PRR packet-success curve, à la
//! Zuniga–Krishnamachari), calibrated so the published shapes hold:
//!
//! * at TelosB power level 19 the PRR stays near 1.0 across 4–16 ft,
//! * at levels 11 and 15 it collapses from ≈1.0 to below 0.1 over the same
//!   span — exactly Fig. 2's story;
//! * the power-trace synthesizer reproduces Fig. 3's ≈80 mW send, ≈60 mW
//!   receive, and ≈80 µW idle averages.
//!
//! Downstream code consumes only `q_e` values (and Eq. 2 beacon estimates
//! thereof), so any channel with the right PRR distribution preserves the
//! algorithms' behaviour.

pub mod beacon;
pub mod dynamics;
pub mod pathloss;
pub mod power;
pub mod prr;

pub use beacon::estimate_prr;
pub use dynamics::{GeChannel, GeState, GilbertElliott, QualityDrift};
pub use pathloss::PathLoss;
pub use power::{PowerState, PowerTrace, TxPowerLevel};
pub use prr::LinkModel;

/// Feet → meters (the paper reports Fig. 2 distances in feet).
pub const FT: f64 = 0.3048;

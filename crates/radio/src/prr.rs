//! The SNR → packet-reception-ratio link curve.

use crate::pathloss::PathLoss;
use crate::power::TxPowerLevel;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wsn_model::Prr;

/// A complete link model: path loss + receiver noise floor + packet
/// success curve.
///
/// The packet-success curve follows the transitional-region literature
/// (Zuniga & Krishnamachari): per-bit error `p_b = ½·exp(−α·γ)` with `γ`
/// the linear SNR, and `PRR = (1 − p_b)^(8·f)` for an `f`-byte frame. The
/// paper's packets are 34 bytes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Path-loss model.
    pub pathloss: PathLoss,
    /// Receiver noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// Per-bit error steepness `α` (higher = sharper transition).
    pub alpha: f64,
    /// Frame size in bytes (the paper's packets are 34 bytes).
    pub frame_bytes: usize,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            pathloss: PathLoss::default(),
            noise_floor_dbm: -95.0,
            alpha: 0.21,
            frame_bytes: 34,
        }
    }
}

impl LinkModel {
    /// PRR for a given SNR in dB.
    pub fn prr_from_snr_db(&self, snr_db: f64) -> Prr {
        let gamma = 10f64.powf(snr_db / 10.0);
        let p_bit = 0.5 * (-self.alpha * gamma).exp();
        let bits = (8 * self.frame_bytes) as f64;
        Prr::clamped((1.0 - p_bit).powf(bits)).expect("finite arithmetic")
    }

    /// Mean PRR (no shadowing) at distance `d` meters under `tx`.
    pub fn mean_prr(&self, d: f64, tx: TxPowerLevel) -> Prr {
        let snr = tx.dbm - self.pathloss.mean_db(d) - self.noise_floor_dbm;
        self.prr_from_snr_db(snr)
    }

    /// One shadowed PRR sample — the "true" quality of a deployed link,
    /// drawn once per link at deployment time (shadowing is static for
    /// fixed node positions).
    pub fn sample_prr<R: Rng + ?Sized>(&self, d: f64, tx: TxPowerLevel, rng: &mut R) -> Prr {
        let snr = tx.dbm - self.pathloss.sample_db(d, rng) - self.noise_floor_dbm;
        self.prr_from_snr_db(snr)
    }

    /// Rescales a measured data-frame PRR to a control frame of `bytes`
    /// bytes. PRR is per-frame; under the per-bit error model
    /// `PRR = (1 − p_b)^(8·f)`, a frame of a different length sees the same
    /// `p_b`, so `PRR_ctrl = PRR_data^(bytes / frame_bytes)`. The protocol's
    /// 5–15-byte ack/update frames therefore cross a link *more* reliably
    /// than the 34-byte data packets its PRR was estimated with.
    pub fn control_frame_prr(&self, data_prr: Prr, bytes: usize) -> Prr {
        let exponent = bytes as f64 / self.frame_bytes as f64;
        Prr::clamped(data_prr.value().powf(exponent)).expect("finite arithmetic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FT;

    fn lvl(l: u8) -> TxPowerLevel {
        TxPowerLevel::from_level(l).unwrap()
    }

    #[test]
    fn prr_monotone_in_snr() {
        let m = LinkModel::default();
        let mut prev = -1.0;
        for snr in [-5.0, 0.0, 3.0, 6.0, 9.0, 12.0, 20.0] {
            let p = m.prr_from_snr_db(snr).value();
            assert!(p >= prev, "PRR must not decrease with SNR");
            prev = p;
        }
        assert!(m.prr_from_snr_db(30.0).value() > 0.999);
        assert!(m.prr_from_snr_db(-10.0).value() < 0.01);
    }

    #[test]
    fn prr_monotone_decreasing_in_distance() {
        let m = LinkModel::default();
        let tx = lvl(15);
        let mut prev = 2.0;
        for ft in [2.0, 4.0, 8.0, 12.0, 16.0] {
            let p = m.mean_prr(ft * FT, tx).value();
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn fig2_shape_power_19_stays_usable() {
        // "the link quality decreases while the distance increases when
        // Tx = 19" — it degrades but remains usable where 11/15 are dead.
        let m = LinkModel::default();
        let tx = lvl(19);
        let near = m.mean_prr(4.0 * FT, tx).value();
        let far = m.mean_prr(16.0 * FT, tx).value();
        assert!(near > 0.99, "4 ft at level 19: {near}");
        assert!(far > 0.5, "16 ft at level 19: {far}");
        assert!(far < near);
        // Clear contrast against level 15 at the same distance.
        assert!(far > 10.0 * m.mean_prr(16.0 * FT, lvl(15)).value());
    }

    #[test]
    fn fig2_shape_low_power_collapses() {
        // "the average link quality goes from almost 100% to less than 10%
        // while the distance increases from 4ft to 16ft when the
        // transmission power is 11 and 15".
        let m = LinkModel::default();
        for level in [11u8, 15] {
            let tx = lvl(level);
            let near = m.mean_prr(4.0 * FT, tx).value();
            let far = m.mean_prr(16.0 * FT, tx).value();
            assert!(near > 0.95, "4 ft at level {level}: {near}");
            assert!(far < 0.10, "16 ft at level {level}: {far}");
        }
    }

    #[test]
    fn higher_power_never_hurts() {
        let m = LinkModel::default();
        for ft in [4.0, 8.0, 12.0, 16.0] {
            let d = ft * FT;
            let p11 = m.mean_prr(d, lvl(11)).value();
            let p15 = m.mean_prr(d, lvl(15)).value();
            let p19 = m.mean_prr(d, lvl(19)).value();
            assert!(p11 <= p15 + 1e-12 && p15 <= p19 + 1e-12);
        }
    }

    #[test]
    fn control_frames_never_less_reliable_than_data() {
        let m = LinkModel::default();
        for q in [0.05, 0.3, 0.6, 0.9, 0.99] {
            let data = Prr::new(q).unwrap();
            // The 12-byte ParentChange and 5-byte Ack both beat the 34-byte
            // data frame; a hypothetical 68-byte frame does worse.
            assert!(m.control_frame_prr(data, 12).value() >= q);
            assert!(m.control_frame_prr(data, 5).value() >= m.control_frame_prr(data, 12).value());
            assert!(m.control_frame_prr(data, 68).value() <= q);
            // Same length is a fixed point.
            assert!((m.control_frame_prr(data, 34).value() - q).abs() < 1e-12);
        }
    }

    #[test]
    fn shadowed_samples_scatter_around_mean() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let m = LinkModel::default();
        let tx = lvl(15);
        let d = 10.0 * FT;
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..500).map(|_| m.sample_prr(d, tx, &mut rng).value()).collect();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(0.0, f64::max);
        assert!(hi - lo > 0.2, "shadowing must spread link quality: {lo}..{hi}");
        for s in samples {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}

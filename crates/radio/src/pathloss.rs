//! Log-distance path loss with log-normal shadowing.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// The log-distance path-loss model:
///
/// `PL(d) = PL(d₀) + 10·η·log₁₀(d/d₀) + X_σ`, `X_σ ~ N(0, σ²)` (dB).
///
/// Defaults are calibrated for the indoor 2.4 GHz setting of the paper's
/// testbeds: reference loss 55 dB at 1 m, exponent 3.0, shadowing σ 3 dB.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathLoss {
    /// Reference path loss at `d₀ = 1 m`, in dB.
    pub pl0_db: f64,
    /// Path-loss exponent `η`.
    pub exponent: f64,
    /// Shadowing standard deviation, dB (0 disables shadowing).
    pub shadowing_sigma_db: f64,
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss { pl0_db: 55.0, exponent: 3.0, shadowing_sigma_db: 3.0 }
    }
}

impl PathLoss {
    /// Mean path loss at distance `d` meters (no shadowing).
    pub fn mean_db(&self, d: f64) -> f64 {
        assert!(d > 0.0, "distance must be positive");
        self.pl0_db + 10.0 * self.exponent * (d.max(1e-3)).log10()
    }

    /// One shadowed sample of the path loss at distance `d` meters.
    pub fn sample_db<R: Rng + ?Sized>(&self, d: f64, rng: &mut R) -> f64 {
        self.mean_db(d) + self.shadowing_sigma_db * standard_normal(rng)
    }
}

/// Box–Muller standard normal (keeps us off rand_distr, which is not in the
/// approved dependency set).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_increases_with_distance() {
        let pl = PathLoss::default();
        assert!(pl.mean_db(2.0) > pl.mean_db(1.0));
        assert!(pl.mean_db(10.0) > pl.mean_db(5.0));
        // 10× distance adds 10·η dB.
        let delta = pl.mean_db(10.0) - pl.mean_db(1.0);
        assert!((delta - 30.0).abs() < 1e-9);
    }

    #[test]
    fn reference_loss_at_one_meter() {
        let pl = PathLoss::default();
        assert!((pl.mean_db(1.0) - 55.0).abs() < 1e-9);
    }

    #[test]
    fn shadowing_has_zero_mean_and_right_spread() {
        let pl = PathLoss { shadowing_sigma_db: 4.0, ..PathLoss::default() };
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| pl.sample_db(3.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - pl.mean_db(3.0)).abs() < 0.1, "mean off: {mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.1, "σ off: {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let pl = PathLoss { shadowing_sigma_db: 0.0, ..PathLoss::default() };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pl.sample_db(2.0, &mut rng), pl.mean_db(2.0));
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn rejects_nonpositive_distance() {
        PathLoss::default().mean_db(0.0);
    }
}

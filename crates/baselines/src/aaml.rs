//! AAML: Approximation Algorithm for Maximizing Lifetime \[1\].
//!
//! The algorithm, as described by Wu–Fahmy–Shroff and summarized in §VII of
//! the MRLC paper: start from an arbitrary aggregation tree and repeatedly
//! relieve the *bottleneck* — the node whose energy depletes first — by
//! switching one of its children to a different parent, as long as the
//! switch improves the network. We accept a switch when it improves the
//! pair `(network lifetime, −|bottleneck set|)` lexicographically, which
//! both drives the min-lifetime up and breaks plateaus where several nodes
//! tie at the minimum; the potential strictly increases, so the search
//! terminates.

use wsn_graph::bfs_tree;
use wsn_model::{lifetime, AggregationTree, EnergyModel, ModelError, Network, NodeId};

/// Tuning knobs for the local search.
#[derive(Clone, Copy, Debug)]
pub struct AamlConfig {
    /// Hard cap on accepted switches (defense against pathological inputs;
    /// the potential argument already guarantees termination).
    pub max_switches: usize,
}

impl Default for AamlConfig {
    fn default() -> Self {
        AamlConfig { max_switches: 10_000 }
    }
}

/// Output of AAML.
#[derive(Clone, Debug)]
pub struct AamlResult {
    /// The lifetime-optimized aggregation tree.
    pub tree: AggregationTree,
    /// Its network lifetime `L(T)` in rounds.
    pub lifetime: f64,
    /// Number of child switches performed.
    pub switches: usize,
}

/// Potential: (network lifetime, −#nodes at the minimum). Higher is better.
fn potential(net: &Network, tree: &AggregationTree, model: &EnergyModel) -> (f64, i64) {
    let mut min_l = f64::INFINITY;
    let mut count = 0i64;
    for i in 0..net.n() {
        let v = NodeId::new(i);
        let l = lifetime::node_lifetime(net.initial_energy(v), model, tree.num_children(v));
        if l < min_l - 1e-9 {
            min_l = l;
            count = 1;
        } else if (l - min_l).abs() <= 1e-9 {
            count += 1;
        }
    }
    (min_l, -count)
}

fn lex_gt(a: (f64, i64), b: (f64, i64)) -> bool {
    a.0 > b.0 * (1.0 + 1e-12) + 1e-12
        || ((a.0 - b.0).abs() <= 1e-9 + 1e-12 * b.0.abs() && a.1 > b.1)
}

/// Runs AAML from `initial` (or the BFS tree when `None`).
///
/// Link qualities are ignored — AAML predates reliability-aware trees; the
/// paper's evaluation additionally pre-filters links with `q < 0.95` before
/// calling it (do that with [`Network::restrict_edges`]).
pub fn aaml_tree(
    net: &Network,
    model: &EnergyModel,
    initial: Option<AggregationTree>,
    config: &AamlConfig,
) -> Result<AamlResult, ModelError> {
    let mut tree = match initial {
        Some(t) => t,
        None => bfs_tree(net)?,
    };
    let n = net.n();
    let mut switches = 0usize;

    'outer: loop {
        if switches >= config.max_switches {
            break;
        }
        let current = potential(net, &tree, model);

        // All nodes whose lifetime equals the bottleneck value.
        let bottlenecks: Vec<NodeId> = (0..n)
            .map(NodeId::new)
            .filter(|&v| {
                let l = lifetime::node_lifetime(net.initial_energy(v), model, tree.num_children(v));
                (l - current.0).abs() <= 1e-9 * (1.0 + current.0.abs())
            })
            .collect();

        let mut best: Option<((f64, i64), NodeId, NodeId)> = None;
        for &b in &bottlenecks {
            // Work over a snapshot of b's children (the tree mutates in the
            // evaluation below only virtually).
            let children: Vec<NodeId> = tree.children(b).to_vec();
            for c in children {
                for &(_, w) in net.neighbors(c) {
                    if w == b || tree.in_subtree(w, c) {
                        continue;
                    }
                    // Evaluate the switch c: b → w without mutating: only b
                    // and w change children counts.
                    let score = switch_potential(net, &tree, model, b, w);
                    if lex_gt(score, current) && best.is_none_or(|(s, _, _)| lex_gt(score, s)) {
                        best = Some((score, c, w));
                    }
                }
            }
        }

        match best {
            Some((_, c, w)) => {
                // Candidates were pre-validated; if a reattach still fails
                // the tree is untouched, so stop improving and return it
                // rather than panic mid-search.
                if tree.reattach(c, w).is_err() {
                    break 'outer;
                }
                switches += 1;
            }
            None => break 'outer,
        }
    }

    let life = lifetime::network_lifetime(net, &tree, model);
    Ok(AamlResult { tree, lifetime: life, switches })
}

/// Potential after moving one child from `from` to `to` (children counts of
/// exactly these two nodes change by ∓1).
fn switch_potential(
    net: &Network,
    tree: &AggregationTree,
    model: &EnergyModel,
    from: NodeId,
    to: NodeId,
) -> (f64, i64) {
    let mut min_l = f64::INFINITY;
    let mut count = 0i64;
    for i in 0..net.n() {
        let v = NodeId::new(i);
        let mut ch = tree.num_children(v);
        if v == from {
            ch -= 1;
        } else if v == to {
            ch += 1;
        }
        let l = lifetime::node_lifetime(net.initial_energy(v), model, ch);
        if l < min_l - 1e-9 {
            min_l = l;
            count = 1;
        } else if (l - min_l).abs() <= 1e-9 {
            count += 1;
        }
    }
    (min_l, -count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::NetworkBuilder;

    fn complete(n: usize) -> Network {
        let mut b = NetworkBuilder::new(n);
        for u in 0..n {
            for v in u + 1..n {
                b.add_edge(u, v, 0.9).unwrap();
            }
        }
        b.build().unwrap()
    }

    /// Brute-force max lifetime over all spanning trees (tiny graphs).
    fn brute_max_lifetime(net: &Network, model: &EnergyModel) -> f64 {
        let n = net.n();
        let m = net.num_edges();
        assert!(m <= 16);
        let mut best: f64 = 0.0;
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != n - 1 {
                continue;
            }
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| net.links()[i].endpoints())
                .collect();
            if let Ok(t) = AggregationTree::from_edges(NodeId::SINK, n, &edges) {
                best = best.max(lifetime::network_lifetime(net, &t, model));
            }
        }
        best
    }

    #[test]
    fn spreads_load_on_complete_graph() {
        // On K6 with equal energy the optimum is a Hamiltonian path
        // (every node ≤ 1 child).
        let net = complete(6);
        let model = EnergyModel::PAPER;
        let res = aaml_tree(&net, &model, None, &AamlConfig::default()).unwrap();
        let max_children = (0..6).map(|i| res.tree.num_children(NodeId::new(i))).max().unwrap();
        assert!(max_children <= 1, "AAML left a node with {max_children} children");
        let expect = lifetime::node_lifetime(3000.0, &model, 1);
        assert!((res.lifetime - expect).abs() < 1.0);
    }

    #[test]
    fn reaches_brute_force_optimum_on_k5() {
        let net = complete(5);
        let model = EnergyModel::PAPER;
        let res = aaml_tree(&net, &model, None, &AamlConfig::default()).unwrap();
        let best = brute_max_lifetime(&net, &model);
        assert!((res.lifetime - best).abs() < 1.0, "AAML {} vs optimum {}", res.lifetime, best);
    }

    #[test]
    fn never_worse_than_initial() {
        let net = complete(6);
        let model = EnergyModel::PAPER;
        let init = bfs_tree(&net).unwrap();
        let init_l = lifetime::network_lifetime(&net, &init, &model);
        let res = aaml_tree(&net, &model, Some(init), &AamlConfig::default()).unwrap();
        assert!(res.lifetime >= init_l - 1e-9);
    }

    #[test]
    fn respects_heterogeneous_energy() {
        // Node 1 is nearly dead; AAML must keep it childless if possible.
        let mut b = NetworkBuilder::new(5);
        for u in 0..5 {
            for v in u + 1..5 {
                b.add_edge(u, v, 0.9).unwrap();
            }
        }
        b.set_energy(NodeId::new(1), 100.0).unwrap();
        let net = b.build().unwrap();
        let model = EnergyModel::PAPER;
        let res = aaml_tree(&net, &model, None, &AamlConfig::default()).unwrap();
        assert_eq!(res.tree.num_children(NodeId::new(1)), 0);
        // Its lifetime as a leaf is the hard ceiling.
        let ceiling = lifetime::node_lifetime(100.0, &model, 0);
        assert!((res.lifetime - ceiling).abs() < 1.0);
    }

    #[test]
    fn switch_cap_respected() {
        let net = complete(8);
        let model = EnergyModel::PAPER;
        let res = aaml_tree(&net, &model, None, &AamlConfig { max_switches: 1 }).unwrap();
        assert!(res.switches <= 1);
    }

    #[test]
    fn prefilter_disconnection_is_a_typed_error() {
        // The paper's evaluation drops links with q < 0.95 before AAML;
        // when the filter disconnects the graph, the failure is a typed
        // ModelError from restrict_edges — aaml_tree itself never sees a
        // disconnected network (Network is connected by construction).
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, 0.99).unwrap();
        b.add_edge(1, 2, 0.80).unwrap(); // the only bridge — below the filter
        b.add_edge(2, 3, 0.99).unwrap();
        let net = b.build().unwrap();
        match net.restrict_edges(|l| l.prr().value() >= 0.95) {
            Err(wsn_model::ModelError::Disconnected { .. }) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn unreachable_lc_still_returns_lifetime_maximal_tree() {
        // AAML maximizes lifetime; an infeasible LC is the caller's
        // comparison to make. The search must neither fail nor panic — it
        // returns its best tree, whose lifetime simply falls short.
        let net = complete(5);
        let model = EnergyModel::PAPER;
        let unreachable_lc = 3000.0 / model.tx * 2.0; // beyond a leaf's ceiling
        let res = aaml_tree(&net, &model, None, &AamlConfig::default()).unwrap();
        assert!(res.lifetime < unreachable_lc);
        assert!(res.lifetime > 0.0);
        assert_eq!(res.tree.n(), 5);
    }

    #[test]
    fn star_topology_has_no_choice() {
        // A physical star: the hub must carry everyone.
        let mut b = NetworkBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v, 0.9).unwrap();
        }
        let net = b.build().unwrap();
        let model = EnergyModel::PAPER;
        let res = aaml_tree(&net, &model, None, &AamlConfig::default()).unwrap();
        assert_eq!(res.tree.num_children(NodeId::SINK), 4);
        assert_eq!(res.switches, 0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn aaml_improves_and_stays_valid(
                n in 4usize..8,
                seed in any::<u64>(),
                extra_p in 0u32..100,
            ) {
                // Random connected graph: path + random chords.
                let mut b = NetworkBuilder::new(n);
                let mut rng = StdRng::seed_from_u64(seed);
                use rand::RngExt;
                for i in 0..n - 1 {
                    b.add_edge(i, i + 1, 0.9).unwrap();
                }
                for u in 0..n {
                    for v in u + 2..n {
                        if rng.random_range(0..100) < extra_p {
                            let _ = b.add_edge(u, v, 0.9);
                        }
                    }
                }
                let net = b.build().unwrap();
                let model = EnergyModel::PAPER;
                let init = crate::random_tree(&net, &mut rng).unwrap();
                let init_l = lifetime::network_lifetime(&net, &init, &model);
                let res = aaml_tree(&net, &model, Some(init), &AamlConfig::default()).unwrap();
                prop_assert!(res.lifetime >= init_l - 1e-9);
                // Valid spanning tree over network edges.
                prop_assert_eq!(res.tree.edges().count(), n - 1);
                for (c, p) in res.tree.edges() {
                    prop_assert!(net.find_edge(c, p).is_some());
                }
            }
        }
    }
}

//! Baseline aggregation-tree builders the paper evaluates against (§VII).
//!
//! * [`aaml`] — the Approximation Algorithm for Maximizing Lifetime of
//!   Wu, Fahmy and Shroff (INFOCOM'08, reference \[1\] of the paper),
//!   reimplemented from its published description: start from an arbitrary
//!   tree and iteratively relieve the bottleneck (minimum-lifetime) node by
//!   re-homing one of its children, until no switch improves the network
//!   lifetime. AAML ignores link quality entirely — that is exactly the
//!   deficiency MRLC targets.
//! * [`mst`] — Prim's minimum spanning tree under `c_e = −log q_e`
//!   (reference \[18\]); the paper uses it as the lower bound on the optimal
//!   MRLC cost ("The optimal solution of MRLC should be at least the cost
//!   of MST").
//! * [`spt`] / [`random_tree`] — shortest-path and random spanning trees,
//!   used as simulation workloads and AAML starting points.

pub mod aaml;

use rand::Rng;
use wsn_model::{AggregationTree, ModelError, Network};

pub use aaml::{aaml_tree, AamlConfig, AamlResult};

/// The MST baseline: minimum total `−log q_e` cost, rooted at the sink.
pub fn mst(net: &Network) -> Result<AggregationTree, ModelError> {
    wsn_graph::mst_tree(net)
}

/// Most-reliable-path shortest-path tree (CTP-style reference).
pub fn spt(net: &Network) -> Result<AggregationTree, ModelError> {
    wsn_graph::shortest_path_tree(net)
}

/// A random spanning tree (workload generator; AAML initializer).
pub fn random_tree<R: Rng + ?Sized>(
    net: &Network,
    rng: &mut R,
) -> Result<AggregationTree, ModelError> {
    wsn_graph::random_spanning_tree(net, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wsn_model::NetworkBuilder;

    #[test]
    fn wrappers_produce_spanning_trees() {
        let mut b = NetworkBuilder::new(5);
        for u in 0..5 {
            for v in u + 1..5 {
                b.add_edge(u, v, 0.9 + 0.01 * (u + v) as f64 / 2.0).unwrap();
            }
        }
        let net = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for t in [mst(&net).unwrap(), spt(&net).unwrap(), random_tree(&net, &mut rng).unwrap()] {
            assert_eq!(t.n(), 5);
            assert_eq!(t.edges().count(), 4);
            for (c, p) in t.edges() {
                assert!(net.find_edge(c, p).is_some());
            }
        }
    }
}

//! Random-graph scenarios of §VII-B.

use rand::{Rng, RngExt};
use wsn_model::{ModelError, Network, NetworkBuilder, NodeId};

/// How initial energy is assigned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EnergyDistribution {
    /// Every node gets the same energy (paper: 3000 J).
    Uniform(f64),
    /// Each node draws uniformly from `[lo, hi]` (paper: 1500–5000 J).
    Heterogeneous {
        /// Lower bound, joules.
        lo: f64,
        /// Upper bound, joules.
        hi: f64,
    },
}

/// Parameters of the `G(n, p)` workload.
#[derive(Clone, Copy, Debug)]
pub struct RandomGraphConfig {
    /// Number of nodes (paper: 16).
    pub n: usize,
    /// Independent link probability (paper: 0.7, swept in Fig. 10).
    pub link_probability: f64,
    /// Link quality range (paper: `(0.95, 1)`).
    pub prr_range: (f64, f64),
    /// Initial energy assignment.
    pub energy: EnergyDistribution,
    /// Connectivity retries before giving up.
    pub max_attempts: usize,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            n: 16,
            link_probability: 0.7,
            prr_range: (0.95, 1.0),
            energy: EnergyDistribution::Uniform(3000.0),
            max_attempts: 1000,
        }
    }
}

/// Samples a connected `G(n, p)` network with the configured link qualities
/// and energies. Resamples (up to `max_attempts`) until connected, as the
/// paper implicitly does by only evaluating connected instances.
pub fn random_graph<R: Rng + ?Sized>(
    config: &RandomGraphConfig,
    rng: &mut R,
) -> Result<Network, ModelError> {
    assert!(config.n >= 2, "need at least two nodes");
    assert!((0.0..=1.0).contains(&config.link_probability), "link probability must be in [0, 1]");
    let (qlo, qhi) = config.prr_range;
    assert!(0.0 <= qlo && qlo <= qhi && qhi <= 1.0, "invalid PRR range");

    let mut last_err = ModelError::Empty;
    for _ in 0..config.max_attempts {
        let mut b = NetworkBuilder::new(config.n);
        match config.energy {
            EnergyDistribution::Uniform(e) => {
                b.set_uniform_energy(e)?;
            }
            EnergyDistribution::Heterogeneous { lo, hi } => {
                for v in 0..config.n {
                    let e =
                        if (hi - lo).abs() < f64::EPSILON { lo } else { rng.random_range(lo..hi) };
                    b.set_energy(NodeId::new(v), e)?;
                }
            }
        }
        for u in 0..config.n {
            for v in u + 1..config.n {
                if rng.random::<f64>() < config.link_probability {
                    let q = if (qhi - qlo).abs() < f64::EPSILON {
                        qlo
                    } else {
                        rng.random_range(qlo..qhi)
                    };
                    b.add_edge(u, v, q)?;
                }
            }
        }
        match b.build() {
            Ok(net) => return Ok(net),
            Err(e @ ModelError::Disconnected { .. }) => last_err = e,
            Err(e) => return Err(e),
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_defaults_produce_dense_connected_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RandomGraphConfig::default();
        for _ in 0..10 {
            let net = random_graph(&cfg, &mut rng).unwrap();
            assert_eq!(net.n(), 16);
            // E[edges] = 0.7 · C(16,2) = 84; allow generous slack.
            assert!(net.num_edges() > 50, "{} edges", net.num_edges());
            for l in net.links() {
                let q = l.prr().value();
                assert!((0.95..1.0).contains(&q), "q = {q}");
            }
            assert_eq!(net.initial_energy(NodeId::new(3)), 3000.0);
        }
    }

    #[test]
    fn heterogeneous_energy_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RandomGraphConfig {
            energy: EnergyDistribution::Heterogeneous { lo: 1500.0, hi: 5000.0 },
            ..RandomGraphConfig::default()
        };
        let net = random_graph(&cfg, &mut rng).unwrap();
        let mut varied = false;
        let first = net.initial_energy(NodeId::new(0));
        for v in 0..16 {
            let e = net.initial_energy(NodeId::new(v));
            assert!((1500.0..5000.0).contains(&e));
            if (e - first).abs() > 1.0 {
                varied = true;
            }
        }
        assert!(varied, "energies should differ across nodes");
    }

    #[test]
    fn sparse_graphs_retry_until_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg =
            RandomGraphConfig { n: 10, link_probability: 0.25, ..RandomGraphConfig::default() };
        for _ in 0..5 {
            let net = random_graph(&cfg, &mut rng).unwrap();
            assert_eq!(net.n(), 10); // builder guarantees connectivity
        }
    }

    #[test]
    fn impossible_density_reports_disconnection() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = RandomGraphConfig {
            n: 8,
            link_probability: 0.0,
            max_attempts: 5,
            ..RandomGraphConfig::default()
        };
        assert!(matches!(random_graph(&cfg, &mut rng), Err(ModelError::Disconnected { .. })));
    }

    #[test]
    fn degenerate_ranges_are_fine() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = RandomGraphConfig {
            n: 5,
            link_probability: 1.0,
            prr_range: (0.97, 0.97),
            energy: EnergyDistribution::Heterogeneous { lo: 2000.0, hi: 2000.0 },
            ..RandomGraphConfig::default()
        };
        let net = random_graph(&cfg, &mut rng).unwrap();
        assert_eq!(net.num_edges(), 10);
        for l in net.links() {
            assert_eq!(l.prr().value(), 0.97);
        }
        assert_eq!(net.initial_energy(NodeId::new(2)), 2000.0);
    }
}

//! The device-free-localization (DFL) deployment of §VII.

use rand::{RngExt, SeedableRng};
use wsn_model::{ModelError, Network, NetworkBuilder, NodeId};
use wsn_radio::{estimate_prr, LinkModel, TxPowerLevel};

/// Parameters of the DFL scenario.
#[derive(Clone, Copy, Debug)]
pub struct DflConfig {
    /// Side length of the square, meters (paper: 3.6 m).
    pub side_m: f64,
    /// Spacing between adjacent sensors along the perimeter (paper: 0.9 m).
    pub spacing_m: f64,
    /// TelosB TX power register level (the mid-power regime, level 15,
    /// reproduces the paper's mix of near-perfect short links and weak
    /// diagonals).
    pub tx_level: u8,
    /// Beacon rounds for link estimation (paper: 1000).
    pub beacon_rounds: usize,
    /// Initial energy per node, joules (paper: 3000 J).
    pub initial_energy_j: f64,
    /// Links whose estimated PRR falls below this floor are pruned (they
    /// would never be chosen and only bloat the LP).
    pub prr_floor: f64,
    /// Ambient-imperfection span: each link's physical PRR is additionally
    /// multiplied by `U(1 − span, 1)`, modelling the interference that
    /// keeps real testbed links below 1.0.
    pub imperfection_span: f64,
}

impl Default for DflConfig {
    fn default() -> Self {
        DflConfig {
            side_m: 3.6,
            spacing_m: 0.9,
            tx_level: 15,
            beacon_rounds: 1000,
            initial_energy_j: 3000.0,
            prr_floor: 0.02,
            imperfection_span: 0.006,
        }
    }
}

impl DflConfig {
    /// Sensor positions along the square perimeter, starting at the origin
    /// (node 0, the sink) and walking counter-clockwise.
    pub fn positions(&self) -> Vec<(f64, f64)> {
        let per_side = (self.side_m / self.spacing_m).round() as usize;
        let mut pos = Vec::with_capacity(4 * per_side);
        for i in 0..per_side {
            pos.push((i as f64 * self.spacing_m, 0.0));
        }
        for i in 0..per_side {
            pos.push((self.side_m, i as f64 * self.spacing_m));
        }
        for i in 0..per_side {
            pos.push((self.side_m - i as f64 * self.spacing_m, self.side_m));
        }
        for i in 0..per_side {
            pos.push((0.0, self.side_m - i as f64 * self.spacing_m));
        }
        pos
    }
}

/// Builds the DFL network: geometry → radio model → 1000-round beacon
/// estimates, deterministically from `seed`.
pub fn dfl_network(
    config: &DflConfig,
    model: &LinkModel,
    seed: u64,
) -> Result<Network, ModelError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pos = config.positions();
    let n = pos.len();
    let tx = TxPowerLevel::from_level(config.tx_level)
        .unwrap_or_else(|| panic!("unknown TelosB power level {}", config.tx_level));

    let mut b = NetworkBuilder::new(n);
    b.set_uniform_energy(config.initial_energy_j)?;
    for u in 0..n {
        for v in u + 1..n {
            let (ux, uy) = pos[u];
            let (vx, vy) = pos[v];
            let d = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
            // Static shadowed channel for this link…
            let physical = model.sample_prr(d, tx, &mut rng);
            // …attenuated by ambient interference…
            let factor = 1.0 - rng.random_range(0.0..config.imperfection_span);
            let actual = physical.degraded(factor);
            // …observed through 1000 beacon rounds (Eq. 2).
            let estimated = estimate_prr(actual, config.beacon_rounds, &mut rng);
            if estimated.value() >= config.prr_floor {
                b.add_edge(u, v, estimated.value())?;
            }
        }
    }
    b.build()
}

/// Euclidean distance between two DFL nodes (helper for analyses).
pub fn dfl_distance(config: &DflConfig, a: NodeId, b: NodeId) -> f64 {
    let pos = config.positions();
    let (ax, ay) = pos[a.index()];
    let (bx, by) = pos[b.index()];
    ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_nodes_on_the_perimeter() {
        let cfg = DflConfig::default();
        let pos = cfg.positions();
        assert_eq!(pos.len(), 16);
        // All on the square boundary with 0.9 m grid coordinates.
        for &(x, y) in &pos {
            let on_edge = x.abs() < 1e-9
                || y.abs() < 1e-9
                || (x - 3.6).abs() < 1e-9
                || (y - 3.6).abs() < 1e-9;
            assert!(on_edge, "({x}, {y}) is not on the perimeter");
        }
        // Adjacent spacing is 0.9 m, including the wrap-around pair.
        for i in 0..16 {
            let (ax, ay) = pos[i];
            let (bx, by) = pos[(i + 1) % 16];
            let d = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
            assert!((d - 0.9).abs() < 1e-9, "spacing between {i} and next: {d}");
        }
    }

    #[test]
    fn network_is_connected_and_deterministic() {
        let cfg = DflConfig::default();
        let model = LinkModel::default();
        let a = dfl_network(&cfg, &model, 42).unwrap();
        let b = dfl_network(&cfg, &model, 42).unwrap();
        assert_eq!(a.n(), 16);
        assert_eq!(a.num_edges(), b.num_edges());
        for ((_, la), (_, lb)) in a.edges().zip(b.edges()) {
            assert_eq!(la.prr().value(), lb.prr().value());
        }
        // Different seed ⇒ different trace.
        let c = dfl_network(&cfg, &model, 43).unwrap();
        let same = a.num_edges() == c.num_edges()
            && a.edges().zip(c.edges()).all(|((_, x), (_, y))| x.prr().value() == y.prr().value());
        assert!(!same);
    }

    #[test]
    fn link_quality_mix_matches_the_testbed_story() {
        let cfg = DflConfig::default();
        let model = LinkModel::default();
        let net = dfl_network(&cfg, &model, 7).unwrap();
        let qualities: Vec<f64> = net.links().iter().map(|l| l.prr().value()).collect();
        let strong = qualities.iter().filter(|&&q| q > 0.95).count();
        let weak = qualities.iter().filter(|&&q| q < 0.5).count();
        // Plenty of strong short links (a spanning tree's worth and more)…
        assert!(strong >= 16, "only {strong} strong links");
        // …and some weak long diagonals.
        assert!(weak >= 1, "no weak links at all");
        // Nothing is exactly perfect (ambient imperfection + estimation).
        let perfect = qualities.iter().filter(|&&q| q >= 1.0).count();
        assert!(
            perfect < qualities.len() / 4,
            "{perfect}/{} links estimated perfect",
            qualities.len()
        );
    }

    #[test]
    fn adjacent_links_are_strong() {
        let cfg = DflConfig::default();
        let model = LinkModel::default();
        let net = dfl_network(&cfg, &model, 3).unwrap();
        for i in 0..16usize {
            let j = (i + 1) % 16;
            let e = net
                .find_edge(NodeId::new(i), NodeId::new(j))
                .unwrap_or_else(|| panic!("adjacent link ({i}, {j}) pruned"));
            assert!(
                net.link(e).prr().value() > 0.9,
                "adjacent link ({i}, {j}) weak: {}",
                net.link(e).prr().value()
            );
        }
    }

    #[test]
    fn distance_helper() {
        let cfg = DflConfig::default();
        assert!((dfl_distance(&cfg, NodeId::new(0), NodeId::new(1)) - 0.9).abs() < 1e-9);
        // Opposite corners: node 0 at (0,0), node 8 at (3.6, 3.6).
        let diag = dfl_distance(&cfg, NodeId::new(0), NodeId::new(8));
        assert!((diag - 3.6 * std::f64::consts::SQRT_2).abs() < 1e-9);
    }
}

//! Random geometric deployments: nodes scattered in an area, link quality
//! from the radio model.
//!
//! `G(n, p)` with `q ~ U(0.95, 1)` (§VII-B) decouples topology from
//! quality; real deployments do not — long links are weak links. These
//! generators produce spatially-embedded networks where the PRR falls out
//! of distance through [`wsn_radio::LinkModel`], the regime where
//! quality-aware tree construction matters most.

use rand::{RngExt, SeedableRng};
use wsn_model::{ModelError, Network, NetworkBuilder, NodeId};
use wsn_radio::{estimate_prr, LinkModel, TxPowerLevel};

/// Parameters of a uniform-random planar deployment.
#[derive(Clone, Copy, Debug)]
pub struct GeometricConfig {
    /// Number of nodes (node 0, the sink, is placed at the area center).
    pub n: usize,
    /// Side length of the square deployment area, meters.
    pub side_m: f64,
    /// TelosB TX power register level.
    pub tx_level: u8,
    /// Beacon rounds for link estimation.
    pub beacon_rounds: usize,
    /// Initial energy per node, joules.
    pub initial_energy_j: f64,
    /// Estimated-PRR floor below which links are pruned.
    pub prr_floor: f64,
    /// Resampling attempts for connectivity.
    pub max_attempts: usize,
}

impl Default for GeometricConfig {
    fn default() -> Self {
        GeometricConfig {
            n: 16,
            side_m: 6.0,
            tx_level: 19,
            beacon_rounds: 1000,
            initial_energy_j: 3000.0,
            prr_floor: 0.02,
            max_attempts: 200,
        }
    }
}

/// A deployment: the network plus the node positions that produced it.
#[derive(Clone, Debug)]
pub struct GeometricDeployment {
    /// The estimated network.
    pub network: Network,
    /// Node positions in meters (`positions[0]` is the sink).
    pub positions: Vec<(f64, f64)>,
}

/// Samples a connected geometric deployment.
pub fn geometric_deployment(
    config: &GeometricConfig,
    model: &LinkModel,
    seed: u64,
) -> Result<GeometricDeployment, ModelError> {
    assert!(config.n >= 2);
    let tx = TxPowerLevel::from_level(config.tx_level)
        .unwrap_or_else(|| panic!("unknown TelosB power level {}", config.tx_level));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let mut last_err = ModelError::Empty;
    for _ in 0..config.max_attempts {
        // Sink at the center; sensors uniform over the square.
        let mut positions = vec![(config.side_m / 2.0, config.side_m / 2.0)];
        for _ in 1..config.n {
            positions
                .push((rng.random_range(0.0..config.side_m), rng.random_range(0.0..config.side_m)));
        }
        let mut b = NetworkBuilder::new(config.n);
        b.set_uniform_energy(config.initial_energy_j)?;
        for u in 0..config.n {
            for v in u + 1..config.n {
                let (ux, uy) = positions[u];
                let (vx, vy) = positions[v];
                let d = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt().max(0.05);
                let physical = model.sample_prr(d, tx, &mut rng);
                let estimated = estimate_prr(physical, config.beacon_rounds, &mut rng);
                if estimated.value() >= config.prr_floor {
                    b.add_edge(u, v, estimated.value())?;
                }
            }
        }
        match b.build() {
            Ok(network) => return Ok(GeometricDeployment { network, positions }),
            Err(e @ ModelError::Disconnected { .. }) => last_err = e,
            Err(e) => return Err(e),
        }
    }
    Err(last_err)
}

/// Euclidean distance between two deployed nodes.
pub fn deployment_distance(d: &GeometricDeployment, a: NodeId, b: NodeId) -> f64 {
    let (ax, ay) = d.positions[a.index()];
    let (bx, by) = d.positions[b.index()];
    ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_is_connected_and_deterministic() {
        let cfg = GeometricConfig::default();
        let model = LinkModel::default();
        let a = geometric_deployment(&cfg, &model, 5).unwrap();
        let b = geometric_deployment(&cfg, &model, 5).unwrap();
        assert_eq!(a.network.n(), 16);
        assert_eq!(a.network.num_edges(), b.network.num_edges());
        assert_eq!(a.positions, b.positions);
        // Sink at the center.
        assert_eq!(a.positions[0], (3.0, 3.0));
    }

    #[test]
    fn quality_correlates_with_distance() {
        let cfg = GeometricConfig::default();
        let model = LinkModel::default();
        let dep = geometric_deployment(&cfg, &model, 9).unwrap();
        // Compare the mean quality of the shortest vs. longest quartile.
        let mut pairs: Vec<(f64, f64)> = dep
            .network
            .links()
            .iter()
            .map(|l| (deployment_distance(&dep, l.u(), l.v()), l.prr().value()))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let q = pairs.len() / 4;
        assert!(q >= 2, "need enough links for quartiles");
        let near: f64 = pairs[..q].iter().map(|p| p.1).sum::<f64>() / q as f64;
        let far: f64 = pairs[pairs.len() - q..].iter().map(|p| p.1).sum::<f64>() / q as f64;
        assert!(near > far + 0.05, "near links ({near:.3}) should beat far links ({far:.3})");
    }

    #[test]
    fn positions_inside_the_area() {
        let cfg = GeometricConfig { n: 24, side_m: 10.0, ..GeometricConfig::default() };
        let dep = geometric_deployment(&cfg, &LinkModel::default(), 2).unwrap();
        for &(x, y) in &dep.positions {
            assert!((0.0..=10.0).contains(&x));
            assert!((0.0..=10.0).contains(&y));
        }
    }

    #[test]
    fn impossible_area_reports_disconnection() {
        // A huge area at minimum power: nodes cannot hear each other.
        let cfg = GeometricConfig {
            side_m: 500.0,
            tx_level: 3,
            max_attempts: 3,
            ..GeometricConfig::default()
        };
        assert!(matches!(
            geometric_deployment(&cfg, &LinkModel::default(), 1),
            Err(ModelError::Disconnected { .. })
        ));
    }
}

//! Scenario generation: the paper's two evaluation substrates.
//!
//! * [`dfl`] — the device-free-localization deployment of §VII (Fig. 6):
//!   16 TelosB nodes on the perimeter of a 3.6 m × 3.6 m square, 0.9 m
//!   apart, node 0 the sink, 3000 J each, link qualities estimated from
//!   1000 beacon rounds (Eq. 2). The physical trace is replaced by the
//!   calibrated radio model of [`wsn_radio`] with per-link static shadowing
//!   and a small ambient-imperfection factor (interference keeps even
//!   short testbed links below PRR 1.0).
//! * [`random`] — the random-graph workload of §VII-B: `G(n, p)` with each
//!   edge present independently with probability `p`, link quality uniform
//!   in `(0.95, 1)`, and equal (3000 J) or heterogeneous
//!   (`[1500 J, 5000 J]`) initial energy.
//! * [`trace`] — a small plain-text trace codec so scenarios can be saved,
//!   shared and replayed.

pub mod dfl;
pub mod geometric;
pub mod random;
pub mod trace;

pub use dfl::{dfl_network, DflConfig};
pub use geometric::{
    deployment_distance, geometric_deployment, GeometricConfig, GeometricDeployment,
};
pub use random::{random_graph, EnergyDistribution, RandomGraphConfig};
pub use trace::{read_trace, write_trace};

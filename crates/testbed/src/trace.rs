//! Plain-text trace codec for scenarios.
//!
//! Format (line-oriented, `#` comments allowed):
//!
//! ```text
//! nodes <n>
//! energy <node> <joules>        # one per node (optional; default 3000 J)
//! link <u> <v> <prr>            # one per undirected link
//! ```

use std::fmt::Write as _;
use wsn_model::{ModelError, Network, NetworkBuilder, NodeId};

/// Serializes a network into the text trace format.
pub fn write_trace(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# MRLC scenario trace");
    let _ = writeln!(out, "nodes {}", net.n());
    for v in 0..net.n() {
        let _ = writeln!(out, "energy {} {}", v, net.initial_energy(NodeId::new(v)));
    }
    for l in net.links() {
        let _ = writeln!(out, "link {} {} {}", l.u(), l.v(), l.prr().value());
    }
    out
}

/// Errors raised while parsing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The parsed network failed validation.
    Model(ModelError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Parse { line, message } => write!(f, "line {line}: {message}"),
            TraceError::Model(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses the text trace format back into a network.
pub fn read_trace(text: &str) -> Result<Network, TraceError> {
    let mut builder: Option<NetworkBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap();
        let mut next_num = |what: &str| -> Result<f64, TraceError> {
            parts
                .next()
                .ok_or_else(|| TraceError::Parse {
                    line: line_no,
                    message: format!("missing {what}"),
                })?
                .parse::<f64>()
                .map_err(|e| TraceError::Parse {
                    line: line_no,
                    message: format!("bad {what}: {e}"),
                })
        };
        match keyword {
            "nodes" => {
                let n = next_num("node count")? as usize;
                builder = Some(NetworkBuilder::new(n));
            }
            "energy" => {
                let b = builder.as_mut().ok_or_else(|| TraceError::Parse {
                    line: line_no,
                    message: "`energy` before `nodes`".into(),
                })?;
                let v = next_num("node id")? as usize;
                let e = next_num("energy")?;
                b.set_energy(NodeId::new(v), e).map_err(TraceError::Model)?;
            }
            "link" => {
                let b = builder.as_mut().ok_or_else(|| TraceError::Parse {
                    line: line_no,
                    message: "`link` before `nodes`".into(),
                })?;
                let u = next_num("endpoint")? as usize;
                let v = next_num("endpoint")? as usize;
                let q = next_num("prr")?;
                b.add_edge(u, v, q).map_err(TraceError::Model)?;
            }
            other => {
                return Err(TraceError::Parse {
                    line: line_no,
                    message: format!("unknown keyword `{other}`"),
                });
            }
        }
    }
    builder
        .ok_or_else(|| TraceError::Parse { line: 0, message: "no `nodes` line".into() })?
        .build()
        .map_err(TraceError::Model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_graph, RandomGraphConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = RandomGraphConfig { n: 8, ..RandomGraphConfig::default() };
        let net = random_graph(&cfg, &mut rng).unwrap();
        let text = write_trace(&net);
        let back = read_trace(&text).unwrap();
        assert_eq!(back.n(), net.n());
        assert_eq!(back.num_edges(), net.num_edges());
        for ((_, a), (_, b)) in net.edges().zip(back.edges()) {
            assert_eq!(a.endpoints(), b.endpoints());
            assert!((a.prr().value() - b.prr().value()).abs() < 1e-12);
        }
        for v in 0..net.n() {
            assert_eq!(net.initial_energy(NodeId::new(v)), back.initial_energy(NodeId::new(v)));
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\nnodes 2\nenergy 0 3000\nenergy 1 3000\nlink 0 1 0.9\n";
        let net = read_trace(text).unwrap();
        assert_eq!(net.n(), 2);
        assert_eq!(net.num_edges(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "nodes 2\nlink 0 1\n";
        match read_trace(text) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        match read_trace("link 0 1 0.9\n") {
            Err(TraceError::Parse { message, .. }) => {
                assert!(message.contains("before `nodes`"))
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        match read_trace("frobnicate\n") {
            Err(TraceError::Parse { message, .. }) => {
                assert!(message.contains("unknown keyword"))
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_network_reported() {
        // Disconnected.
        let text = "nodes 4\nlink 0 1 0.9\nlink 2 3 0.9\n";
        assert!(matches!(read_trace(text), Err(TraceError::Model(_))));
        // Empty.
        assert!(read_trace("# nothing\n").is_err());
    }
}

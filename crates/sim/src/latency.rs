//! Aggregation latency: how many slots a round takes to reach the sink.
//!
//! With slotted, interference-free scheduling a node can forward as soon as
//! all its children have reported, so a round completes in `depth(T)` slots
//! — the metric that the delay-constrained line of related work (Shen et
//! al., §II) optimizes. IRA does not constrain depth, so this module lets
//! the experiments quantify the latency cost of its lifetime/reliability
//! trade-off against SPT and MST trees.

use wsn_model::{AggregationTree, NodeId};

/// Depth of the tree: slots per aggregation round under ideal scheduling.
pub fn round_latency_slots(tree: &AggregationTree) -> usize {
    (0..tree.n()).map(|i| tree.depth(NodeId::new(i))).max().unwrap_or(0)
}

/// Average over nodes of their hop distance to the sink — the mean
/// freshness of individual readings.
pub fn mean_hop_distance(tree: &AggregationTree) -> f64 {
    if tree.n() == 0 {
        return 0.0;
    }
    let total: usize = (0..tree.n()).map(|i| tree.depth(NodeId::new(i))).sum();
    total as f64 / tree.n() as f64
}

/// Histogram of node depths (`result[d]` = nodes at depth `d`).
pub fn depth_histogram(tree: &AggregationTree) -> Vec<usize> {
    let max = round_latency_slots(tree);
    let mut hist = vec![0usize; max + 1];
    for i in 0..tree.n() {
        hist[tree.depth(NodeId::new(i))] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn path(k: usize) -> AggregationTree {
        let edges: Vec<_> = (0..k - 1).map(|i| (n(i), n(i + 1))).collect();
        AggregationTree::from_edges(n(0), k, &edges).unwrap()
    }

    fn star(k: usize) -> AggregationTree {
        let edges: Vec<_> = (1..k).map(|v| (n(0), n(v))).collect();
        AggregationTree::from_edges(n(0), k, &edges).unwrap()
    }

    #[test]
    fn path_latency_is_length() {
        assert_eq!(round_latency_slots(&path(6)), 5);
        assert!((mean_hop_distance(&path(6)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn star_latency_is_one() {
        assert_eq!(round_latency_slots(&star(6)), 1);
        assert!((mean_hop_distance(&star(6)) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_all_nodes() {
        let t = path(5);
        let h = depth_histogram(&t);
        assert_eq!(h, vec![1, 1, 1, 1, 1]);
        let s = star(5);
        assert_eq!(depth_histogram(&s), vec![1, 4]);
    }

    #[test]
    fn lifetime_friendly_trees_pay_latency() {
        // The max-lifetime shape (a path) has the worst latency; the most
        // latency-friendly shape (a star) has the worst lifetime — the
        // three-way trade-off in one assertion.
        let k = 8;
        assert!(round_latency_slots(&path(k)) > round_latency_slots(&star(k)));
    }

    #[test]
    fn single_node() {
        let t = AggregationTree::from_parents(n(0), vec![None]).unwrap();
        assert_eq!(round_latency_slots(&t), 0);
        assert_eq!(mean_hop_distance(&t), 0.0);
        assert_eq!(depth_histogram(&t), vec![1]);
    }
}

//! Small summary-statistics helpers shared by the experiment harness.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Mean / std / min / max of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl Summary {
    /// Summarizes a sample (zeros for an empty slice).
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            mean: mean(xs),
            std: stddev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            count: xs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[3.0]), 0.0);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 3);
    }
}

//! TDMA slot schedules for aggregation trees.
//!
//! A data-aggregation round needs every child to transmit *before* its
//! parent, and two transmissions may share a slot only if they do not
//! interfere. We use the standard protocol-interference model on the tree:
//! two tree transmissions `c₁ → p₁`, `c₂ → p₂` conflict when they share a
//! node or when one's sender is within one hop (in the *network*) of the
//! other's receiver — the hidden-terminal constraint.
//!
//! The greedy bottom-up scheduler below yields a conflict-free schedule
//! whose length lower-bounds at `depth(T)` and upper-bounds at `n − 1`; the
//! experiments use it to translate tree shape into round time, the quantity
//! the wake-up-scheduling line of related work (\[13\]) optimizes.

use wsn_model::{AggregationTree, Network, NodeId};

/// A conflict-free transmission schedule: `slot_of[v]` is the slot in which
/// non-root `v` transmits to its parent (`None` for the root).
#[derive(Clone, Debug)]
pub struct TdmaSchedule {
    slot_of: Vec<Option<usize>>,
    length: usize,
}

impl TdmaSchedule {
    /// Slot assigned to `v`'s uplink transmission.
    pub fn slot_of(&self, v: NodeId) -> Option<usize> {
        self.slot_of[v.index()]
    }

    /// Total slots per aggregation round.
    pub fn length(&self) -> usize {
        self.length
    }

    /// All transmissions in a given slot, as `(child, parent_index)` pairs.
    pub fn transmissions_in(&self, slot: usize) -> Vec<NodeId> {
        self.slot_of
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Some(slot))
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }
}

/// Do the uplink transmissions of `a` and `b` conflict under the protocol
/// model? (Shared node, or a sender adjacent to the other's receiver.)
fn conflicts(net: &Network, tree: &AggregationTree, a: NodeId, b: NodeId) -> bool {
    let pa = tree.parent(a).expect("a transmits");
    let pb = tree.parent(b).expect("b transmits");
    if a == b || a == pb || b == pa || pa == pb {
        return true;
    }
    // Hidden terminal: sender of one within range of the other's receiver.
    net.find_edge(a, pb).is_some() || net.find_edge(b, pa).is_some()
}

/// Builds a greedy bottom-up schedule: process nodes deepest-first; each
/// transmission takes the earliest slot that (a) is after all its
/// children's slots and (b) has no conflict with transmissions already in
/// that slot.
pub fn greedy_schedule(net: &Network, tree: &AggregationTree) -> TdmaSchedule {
    let n = tree.n();
    let mut order: Vec<NodeId> =
        (0..n).map(NodeId::new).filter(|&v| tree.parent(v).is_some()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(tree.depth(v)));

    let mut slot_of: Vec<Option<usize>> = vec![None; n];
    let mut slots: Vec<Vec<NodeId>> = Vec::new();
    for &v in &order {
        // Earliest slot after every child of v has reported.
        let min_slot = tree
            .children(v)
            .iter()
            .map(|&c| slot_of[c.index()].expect("children scheduled first") + 1)
            .max()
            .unwrap_or(0);
        let mut placed = None;
        for (s, members) in slots.iter().enumerate().skip(min_slot) {
            if members.iter().all(|&m| !conflicts(net, tree, v, m)) {
                placed = Some(s);
                break;
            }
        }
        let s = placed.unwrap_or_else(|| {
            slots.push(Vec::new());
            slots.len() - 1
        });
        slots[s].push(v);
        slot_of[v.index()] = Some(s);
    }
    TdmaSchedule { slot_of, length: slots.len() }
}

/// Validates that a schedule is causal and conflict-free (test helper,
/// public so integration tests can use it).
pub fn validate_schedule(net: &Network, tree: &AggregationTree, sched: &TdmaSchedule) -> bool {
    for i in 0..tree.n() {
        let v = NodeId::new(i);
        match (tree.parent(v), sched.slot_of(v)) {
            (None, None) => {}
            (Some(_), Some(s)) => {
                // Children must come strictly earlier.
                for &c in tree.children(v) {
                    match sched.slot_of(c) {
                        Some(cs) if cs < s => {}
                        _ => return false,
                    }
                }
            }
            _ => return false,
        }
    }
    for s in 0..sched.length() {
        let members = sched.transmissions_in(s);
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if conflicts(net, tree, a, b) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::NetworkBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn line(k: usize) -> (Network, AggregationTree) {
        let mut b = NetworkBuilder::new(k);
        for i in 0..k - 1 {
            b.add_edge(i, i + 1, 0.9).unwrap();
        }
        let net = b.build().unwrap();
        let edges: Vec<_> = (0..k - 1).map(|i| (n(i), n(i + 1))).collect();
        let tree = AggregationTree::from_edges(n(0), k, &edges).unwrap();
        (net, tree)
    }

    #[test]
    fn chain_schedules_serially_near_the_sink() {
        let (net, tree) = line(5);
        let sched = greedy_schedule(&net, &tree);
        assert!(validate_schedule(&net, &tree, &sched));
        // A chain has no spatial reuse between adjacent hops: the deepest
        // node goes first, each ancestor one slot later.
        assert_eq!(sched.slot_of(n(4)), Some(0));
        assert_eq!(sched.slot_of(n(1)), Some(3));
        assert_eq!(sched.length(), 4);
    }

    #[test]
    fn chain_cannot_pipeline_but_branches_can() {
        // Aggregation causality makes a single chain fully serial…
        let (net, tree) = line(12);
        let sched = greedy_schedule(&net, &tree);
        assert!(validate_schedule(&net, &tree, &sched));
        assert_eq!(sched.length(), 11, "a chain is inherently serial");

        // …but parallel branches interleave: two 5-hop arms off the sink.
        let mut b = NetworkBuilder::new(11);
        for i in 0..5 {
            b.add_edge(if i == 0 { 0 } else { i }, i + 1, 0.9).unwrap(); // arm A: 0-1-2-3-4-5
        }
        for i in 0..5 {
            b.add_edge(if i == 0 { 0 } else { 5 + i }, 6 + i, 0.9).unwrap(); // arm B: 0-6-7-8-9-10
        }
        let net = b.build().unwrap();
        let mut edges = Vec::new();
        for i in 0..5 {
            edges.push((n(if i == 0 { 0 } else { i }), n(i + 1)));
            edges.push((n(if i == 0 { 0 } else { 5 + i }), n(6 + i)));
        }
        let tree = AggregationTree::from_edges(n(0), 11, &edges).unwrap();
        let sched = greedy_schedule(&net, &tree);
        assert!(validate_schedule(&net, &tree, &sched));
        assert!(sched.length() < 10, "two arms must interleave: {} slots", sched.length());
        assert!(sched.length() >= 5, "depth is a hard floor");
    }

    #[test]
    fn star_is_fully_serial() {
        let mut b = NetworkBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v, 0.9).unwrap();
        }
        let net = b.build().unwrap();
        let edges: Vec<_> = (1..5).map(|v| (n(0), n(v))).collect();
        let tree = AggregationTree::from_edges(n(0), 5, &edges).unwrap();
        let sched = greedy_schedule(&net, &tree);
        assert!(validate_schedule(&net, &tree, &sched));
        // All senders share the receiver: one transmission per slot.
        assert_eq!(sched.length(), 4);
    }

    #[test]
    fn schedule_length_bounds() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        for seed in 0..5u64 {
            let mut b = NetworkBuilder::new(10);
            for i in 0..9 {
                b.add_edge(i, i + 1, 0.9).unwrap();
            }
            // Extra chords.
            for u in 0..10 {
                for v in u + 2..10 {
                    if (u * 31 + v * 17 + seed as usize) % 4 == 0 {
                        let _ = b.add_edge(u, v, 0.9);
                    }
                }
            }
            let net = b.build().unwrap();
            let tree = wsn_graph::random_spanning_tree(&net, &mut rng).unwrap();
            let sched = greedy_schedule(&net, &tree);
            assert!(validate_schedule(&net, &tree, &sched));
            let depth = crate::latency::round_latency_slots(&tree);
            assert!(sched.length() >= depth, "length below depth");
            assert!(sched.length() <= 9, "length above n − 1");
        }
    }

    #[test]
    fn single_node_schedule_is_empty() {
        let mut b = NetworkBuilder::new(1);
        b.set_uniform_energy(1.0).unwrap();
        let net = b.build().unwrap();
        let tree = AggregationTree::from_parents(n(0), vec![None]).unwrap();
        let sched = greedy_schedule(&net, &tree);
        assert_eq!(sched.length(), 0);
        assert!(validate_schedule(&net, &tree, &sched));
    }
}

//! Data-aggregation round simulator.
//!
//! The paper's traffic model (§III-B): once per round every node aggregates
//! its children's packets with its own reading and transmits a single
//! packet to its parent. Two loss regimes matter:
//!
//! * **No retransmissions** (the paper's operating point for time-critical
//!   collection): a lost packet silently drops the whole subtree's data for
//!   that round; the probability a round delivers everything is exactly
//!   `Q(T) = Π q_e`, which [`rounds`] verifies empirically.
//! * **Retransmit-until-success** (the ETX strawman of Fig. 1): each hop
//!   repeats until received; the expected packet count per round is
//!   `Σ_e 1/q_e`, growing as `≈ (n−1)/q̄` as average quality `q̄` drops —
//!   the motivation experiment in [`retransmission`].
//!
//! [`lifetime_sim`] drains per-node batteries round by round and reports
//! when the first node dies, validating the closed-form Eq. 1.
//! [`stats`] holds the small summary-statistics helpers the experiment
//! harness shares.

pub mod energy_accounting;
pub mod latency;
pub mod lifetime_sim;
pub mod retransmission;
pub mod rounds;
pub mod schedule;
pub mod stats;

pub use energy_accounting::{lossy_expected_ledger, retransmission_ledger, EnergyLedger};
pub use latency::{depth_histogram, mean_hop_distance, round_latency_slots};
pub use lifetime_sim::{simulate_lifetime, LifetimeSimOutcome};
pub use retransmission::{average_packets_per_round, expected_packets_per_round};
pub use rounds::{estimate_reliability, simulate_round, RoundOutcome};
pub use schedule::{greedy_schedule, validate_schedule, TdmaSchedule};
pub use stats::{mean, stddev, Summary};

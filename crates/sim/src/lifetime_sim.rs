//! Battery-drain simulation validating Eq. 1.

use rand::{Rng, RngExt};
use wsn_model::{AggregationTree, EnergyModel, Network, NodeId};

/// Result of draining batteries round by round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifetimeSimOutcome {
    /// Completed rounds before the first node could no longer afford the
    /// next round.
    pub rounds: u64,
    /// The node that depleted first.
    pub first_dead: NodeId,
}

/// Deterministic drain (the paper's accounting: every node spends
/// `Tx + Rx·Ch` per round regardless of losses). Equals `⌊min_v L(v)⌋` with
/// ties broken by node id. `round_cap` bounds the walk.
pub fn simulate_lifetime(
    net: &Network,
    tree: &AggregationTree,
    model: &EnergyModel,
    round_cap: u64,
) -> LifetimeSimOutcome {
    let n = net.n();
    // Eq. 1 charges every node Tx plus Rx per child each round (the sink's
    // Tx models its upstream report, matching the paper's accounting).
    let per_round: Vec<f64> =
        (0..n).map(|i| model.round_energy(tree.num_children(NodeId::new(i)))).collect();
    let mut energy: Vec<f64> = (0..n).map(|i| net.initial_energy(NodeId::new(i))).collect();
    let mut rounds = 0u64;
    loop {
        if rounds >= round_cap {
            // Report the eventual bottleneck anyway.
            let first = argmin_remaining(&energy, &per_round);
            return LifetimeSimOutcome { rounds, first_dead: first };
        }
        // The tolerance absorbs floating-point drift from repeated
        // subtraction (≈ rounds · ulp ≪ 1e-9 J for any realistic horizon).
        if let Some(dead) = (0..n).find(|&i| energy[i] < per_round[i] - 1e-9) {
            return LifetimeSimOutcome { rounds, first_dead: NodeId::new(dead) };
        }
        for i in 0..n {
            energy[i] -= per_round[i];
        }
        rounds += 1;
    }
}

/// Stochastic drain: receivers only pay `Rx` for packets that actually
/// arrive, so lossy links *extend* the simulated lifetime relative to
/// Eq. 1 — a conservatism check on the analytic model.
pub fn simulate_lifetime_lossy<R: Rng + ?Sized>(
    net: &Network,
    tree: &AggregationTree,
    model: &EnergyModel,
    round_cap: u64,
    rng: &mut R,
) -> LifetimeSimOutcome {
    let n = net.n();
    let mut energy: Vec<f64> = (0..n).map(|i| net.initial_energy(NodeId::new(i))).collect();
    let tree_links: Vec<(usize, f64)> = tree
        .edges()
        .map(|(c, p)| {
            let e = net.find_edge(c, p).expect("tree edge must exist");
            (p.index(), net.link(e).prr().value())
        })
        .collect();
    let mut rounds = 0u64;
    loop {
        if rounds >= round_cap {
            let per: Vec<f64> = (0..n).map(|_| model.tx).collect();
            let first = argmin_remaining(&energy, &per);
            return LifetimeSimOutcome { rounds, first_dead: first };
        }
        // Check affordability of the worst case first (Tx plus all children).
        if let Some(dead) = (0..n).find(|&i| energy[i] < model.tx - 1e-9) {
            return LifetimeSimOutcome { rounds, first_dead: NodeId::new(dead) };
        }
        for e in energy.iter_mut() {
            *e -= model.tx;
        }
        for &(parent, q) in &tree_links {
            if rng.random::<f64>() < q {
                energy[parent] -= model.rx;
            }
        }
        if let Some(dead) = (0..n).find(|&i| energy[i] < -1e-9) {
            return LifetimeSimOutcome { rounds, first_dead: NodeId::new(dead) };
        }
        rounds += 1;
    }
}

fn argmin_remaining(energy: &[f64], per_round: &[f64]) -> NodeId {
    let mut best = (0usize, f64::INFINITY);
    for i in 0..energy.len() {
        let ratio = energy[i] / per_round[i].max(1e-18);
        if ratio < best.1 {
            best = (i, ratio);
        }
    }
    NodeId::new(best.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_model::{lifetime, NetworkBuilder};

    fn star(n: usize, energy: f64) -> (Network, AggregationTree) {
        let mut b = NetworkBuilder::new(n);
        for v in 1..n {
            b.add_edge(0, v, 0.9).unwrap();
        }
        b.set_uniform_energy(energy).unwrap();
        let net = b.build().unwrap();
        let edges: Vec<_> = (1..n).map(|v| (NodeId::SINK, NodeId::new(v))).collect();
        let tree = AggregationTree::from_edges(NodeId::SINK, n, &edges).unwrap();
        (net, tree)
    }

    #[test]
    fn deterministic_drain_matches_eq1() {
        let model = EnergyModel::PAPER;
        // Small batteries keep the walk short: 1 J each.
        let (net, tree) = star(4, 1.0);
        let out = simulate_lifetime(&net, &tree, &model, 1_000_000);
        let analytic = lifetime::network_lifetime(&net, &tree, &model);
        assert_eq!(out.rounds, analytic.floor() as u64);
        assert_eq!(out.first_dead, NodeId::SINK, "the hub dies first");
    }

    #[test]
    fn round_cap_respected() {
        let model = EnergyModel::PAPER;
        let (net, tree) = star(4, 3000.0);
        let out = simulate_lifetime(&net, &tree, &model, 100);
        assert_eq!(out.rounds, 100);
    }

    #[test]
    fn lossy_drain_is_never_shorter() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = EnergyModel::PAPER;
        let mut b = NetworkBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(1, 3, 0.5).unwrap();
        b.set_uniform_energy(0.5).unwrap();
        let net = b.build().unwrap();
        let tree = AggregationTree::from_edges(
            NodeId::SINK,
            4,
            &[
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(2)),
                (NodeId::new(1), NodeId::new(3)),
            ],
        )
        .unwrap();
        let det = simulate_lifetime(&net, &tree, &model, 1_000_000);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..5 {
            let lossy = simulate_lifetime_lossy(&net, &tree, &model, 1_000_000, &mut rng);
            assert!(
                lossy.rounds >= det.rounds,
                "lossy {} vs deterministic {}",
                lossy.rounds,
                det.rounds
            );
        }
    }

    #[test]
    fn heterogeneous_energy_changes_the_bottleneck() {
        let model = EnergyModel::PAPER;
        let mut b = NetworkBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.set_energy(NodeId::new(2), 0.01).unwrap();
        b.set_energy(NodeId::new(0), 10.0).unwrap();
        b.set_energy(NodeId::new(1), 10.0).unwrap();
        let net = b.build().unwrap();
        let tree = AggregationTree::from_edges(
            NodeId::SINK,
            3,
            &[(NodeId::new(0), NodeId::new(1)), (NodeId::new(1), NodeId::new(2))],
        )
        .unwrap();
        let out = simulate_lifetime(&net, &tree, &model, 1_000_000);
        assert_eq!(out.first_dead, NodeId::new(2));
    }
}

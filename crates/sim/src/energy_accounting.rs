//! Energy ledger for aggregation rounds, with and without retransmissions.
//!
//! Quantifies the paper's motivation claim behind Fig. 1: at 10% link
//! quality "nodes spend 90% of energy in retransmission".

use rand::{Rng, RngExt};
use wsn_model::{AggregationTree, EnergyModel, Network, NodeId};

/// Energy spent across one or more simulated rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyLedger {
    /// Joules spent on first-attempt transmissions.
    pub first_tx_j: f64,
    /// Joules spent on retransmissions.
    pub retx_j: f64,
    /// Joules spent receiving.
    pub rx_j: f64,
}

impl EnergyLedger {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.first_tx_j + self.retx_j + self.rx_j
    }

    /// Fraction of *transmit* energy that went to retransmissions.
    pub fn retx_fraction(&self) -> f64 {
        let tx = self.first_tx_j + self.retx_j;
        if tx == 0.0 {
            0.0
        } else {
            self.retx_j / tx
        }
    }
}

/// Simulates `rounds` retransmit-until-success rounds and returns the
/// ledger. Receivers pay `Rx` only for the (single) successful copy, as the
/// failed copies are rejected at the PHY; `attempt_cap` bounds dead links.
pub fn retransmission_ledger<R: Rng + ?Sized>(
    net: &Network,
    tree: &AggregationTree,
    model: &EnergyModel,
    rounds: usize,
    attempt_cap: usize,
    rng: &mut R,
) -> EnergyLedger {
    assert!(rounds > 0);
    let mut ledger = EnergyLedger::default();
    let links: Vec<f64> = tree
        .edges()
        .map(|(c, p)| {
            let e = net.find_edge(c, p).expect("tree edge exists");
            net.link(e).prr().value()
        })
        .collect();
    for _ in 0..rounds {
        for &q in &links {
            let mut attempts = 1usize;
            while attempts < attempt_cap && rng.random::<f64>() >= q {
                attempts += 1;
            }
            ledger.first_tx_j += model.tx;
            ledger.retx_j += model.tx * (attempts - 1) as f64;
            ledger.rx_j += model.rx;
        }
    }
    ledger
}

/// The no-retransmission ledger is deterministic: `n − 1` sends and, in
/// expectation, `q_e` receives per link (failed packets are not decoded).
pub fn lossy_expected_ledger(
    net: &Network,
    tree: &AggregationTree,
    model: &EnergyModel,
) -> EnergyLedger {
    let mut ledger = EnergyLedger::default();
    for (c, p) in tree.edges() {
        let e = net.find_edge(c, p).expect("tree edge exists");
        ledger.first_tx_j += model.tx;
        ledger.rx_j += model.rx * net.link(e).prr().value();
    }
    ledger
}

/// Which node would deplete first under the retransmission regime, and how
/// many rounds it survives — retransmissions shift the bottleneck toward
/// nodes behind bad links, not just high-degree nodes.
pub fn retransmission_bottleneck(
    net: &Network,
    tree: &AggregationTree,
    model: &EnergyModel,
) -> (NodeId, f64) {
    let mut per_round = vec![0.0f64; net.n()];
    for (c, p) in tree.edges() {
        let e = net.find_edge(c, p).expect("tree edge exists");
        let etx = net.link(e).prr().etx();
        per_round[c.index()] += model.tx * etx;
        per_round[p.index()] += model.rx;
    }
    let mut best = (NodeId::SINK, f64::INFINITY);
    for (i, &burn) in per_round.iter().enumerate() {
        if burn <= 0.0 {
            continue;
        }
        let rounds = net.initial_energy(NodeId::new(i)) / burn;
        if rounds < best.1 {
            best = (NodeId::new(i), rounds);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wsn_model::NetworkBuilder;

    fn chain(qs: &[f64]) -> (Network, AggregationTree) {
        let k = qs.len() + 1;
        let mut b = NetworkBuilder::new(k);
        for (i, &q) in qs.iter().enumerate() {
            b.add_edge(i, i + 1, q).unwrap();
        }
        let net = b.build().unwrap();
        let edges: Vec<_> = (0..k - 1).map(|i| (NodeId::new(i), NodeId::new(i + 1))).collect();
        let tree = AggregationTree::from_edges(NodeId::SINK, k, &edges).unwrap();
        (net, tree)
    }

    #[test]
    fn paper_claim_90_percent_at_q_10() {
        let (net, tree) = chain(&[0.1; 15]); // 16-node chain at q = 0.1
        let model = EnergyModel::PAPER;
        let mut rng = StdRng::seed_from_u64(1);
        let ledger = retransmission_ledger(&net, &tree, &model, 2000, 10_000, &mut rng);
        let frac = ledger.retx_fraction();
        assert!((frac - 0.9).abs() < 0.01, "retransmission fraction {frac} (paper: 90%)");
    }

    #[test]
    fn perfect_links_have_no_retx() {
        let (net, tree) = chain(&[1.0; 5]);
        let model = EnergyModel::PAPER;
        let mut rng = StdRng::seed_from_u64(2);
        let ledger = retransmission_ledger(&net, &tree, &model, 100, 100, &mut rng);
        assert_eq!(ledger.retx_j, 0.0);
        assert!((ledger.first_tx_j - 100.0 * 5.0 * model.tx).abs() < 1e-9);
        assert_eq!(ledger.retx_fraction(), 0.0);
    }

    #[test]
    fn lossy_ledger_is_cheaper_than_retx() {
        let (net, tree) = chain(&[0.5; 6]);
        let model = EnergyModel::PAPER;
        let lossy = lossy_expected_ledger(&net, &tree, &model);
        let mut rng = StdRng::seed_from_u64(3);
        let retx = retransmission_ledger(&net, &tree, &model, 500, 10_000, &mut rng);
        // Per-round comparison.
        assert!(lossy.total() < retx.total() / 500.0);
        // Lossy receivers only pay for arrived packets.
        assert!((lossy.rx_j - 6.0 * model.rx * 0.5).abs() < 1e-12);
    }

    #[test]
    fn retx_bottleneck_sits_behind_the_bad_link() {
        // Node 3's uplink is terrible; with retransmissions node 3 burns
        // energy fastest even though everyone has one child at most.
        let (net, tree) = chain(&[0.99, 0.99, 0.05, 0.99]);
        let model = EnergyModel::PAPER;
        let (node, rounds) = retransmission_bottleneck(&net, &tree, &model);
        assert_eq!(node, NodeId::new(3));
        assert!(rounds < 1.0e6);
    }

    #[test]
    fn ledger_totals_add_up() {
        let l = EnergyLedger { first_tx_j: 1.0, retx_j: 3.0, rx_j: 0.5 };
        assert!((l.total() - 4.5).abs() < 1e-12);
        assert!((l.retx_fraction() - 0.75).abs() < 1e-12);
    }
}

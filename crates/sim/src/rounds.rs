//! One aggregation round without retransmissions.

use rand::{Rng, RngExt};
use wsn_model::{AggregationTree, Network};

/// What happened in one simulated round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Every hop succeeded — the sink holds all `n` readings.
    pub success: bool,
    /// Number of nodes (including the sink) whose reading reached the sink.
    pub delivered_sources: usize,
    /// Packets transmitted (always `n − 1`: no retries in this mode).
    pub transmissions: usize,
    /// Packets successfully received by parents.
    pub receptions: usize,
}

/// Simulates one aggregation round: post-order, each non-root node sends
/// one packet to its parent, which arrives with the link's PRR. A node
/// whose packet is lost loses its whole aggregated subtree for the round.
pub fn simulate_round<R: Rng + ?Sized>(
    net: &Network,
    tree: &AggregationTree,
    rng: &mut R,
) -> RoundOutcome {
    let n = tree.n();
    // edge_ok[v] = v's packet to its parent arrived.
    let mut edge_ok = vec![true; n];
    let mut receptions = 0usize;
    let mut transmissions = 0usize;
    for (child, parent) in tree.edges() {
        let e = net.find_edge(child, parent).expect("tree edge must exist in the network");
        transmissions += 1;
        let ok = rng.random::<f64>() < net.link(e).prr().value();
        edge_ok[child.index()] = ok;
        if ok {
            receptions += 1;
        }
    }
    // A reading is delivered iff every edge on its path to the sink worked.
    // BFS order guarantees parents are resolved before children.
    let mut path_ok = vec![false; n];
    let mut delivered = 0usize;
    for v in tree.bfs_order() {
        let ok = match tree.parent(v) {
            None => true,
            Some(p) => path_ok[p.index()] && edge_ok[v.index()],
        };
        path_ok[v.index()] = ok;
        if ok {
            delivered += 1;
        }
    }
    RoundOutcome {
        success: delivered == n,
        delivered_sources: delivered,
        transmissions,
        receptions,
    }
}

/// Monte-Carlo estimate of the tree reliability `Q(T)`: the fraction of
/// fully successful rounds.
pub fn estimate_reliability<R: Rng + ?Sized>(
    net: &Network,
    tree: &AggregationTree,
    rounds: usize,
    rng: &mut R,
) -> f64 {
    assert!(rounds > 0);
    let ok = (0..rounds).filter(|_| simulate_round(net, tree, rng).success).count();
    ok as f64 / rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wsn_model::{reliability, NetworkBuilder, NodeId};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn chain(qs: &[f64]) -> (Network, AggregationTree) {
        let k = qs.len() + 1;
        let mut b = NetworkBuilder::new(k);
        for (i, &q) in qs.iter().enumerate() {
            b.add_edge(i, i + 1, q).unwrap();
        }
        let net = b.build().unwrap();
        let edges: Vec<_> = (0..k - 1).map(|i| (n(i), n(i + 1))).collect();
        let tree = AggregationTree::from_edges(n(0), k, &edges).unwrap();
        (net, tree)
    }

    #[test]
    fn perfect_links_always_succeed() {
        let (net, tree) = chain(&[1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let o = simulate_round(&net, &tree, &mut rng);
            assert!(o.success);
            assert_eq!(o.delivered_sources, 4);
            assert_eq!(o.transmissions, 3);
            assert_eq!(o.receptions, 3);
        }
    }

    #[test]
    fn dead_link_kills_the_subtree() {
        let (net, tree) = chain(&[0.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let o = simulate_round(&net, &tree, &mut rng);
        assert!(!o.success);
        // Only the sink's own reading survives: the break is right below it.
        assert_eq!(o.delivered_sources, 1);
        assert_eq!(o.receptions, 2);
    }

    #[test]
    fn empirical_reliability_matches_q() {
        let (net, tree) = chain(&[0.9, 0.8, 0.95]);
        let q = reliability::tree_reliability(&net, &tree);
        let mut rng = StdRng::seed_from_u64(3);
        let est = estimate_reliability(&net, &tree, 60_000, &mut rng);
        assert!((est - q).abs() < 0.01, "estimated {est} vs analytic {q}");
    }

    #[test]
    fn branching_counts_partial_delivery() {
        // Star at sink, two leaves with very different quality.
        let mut b = NetworkBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(0, 2, 0.0).unwrap();
        let net = b.build().unwrap();
        let tree = AggregationTree::from_edges(n(0), 3, &[(n(0), n(1)), (n(0), n(2))]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let o = simulate_round(&net, &tree, &mut rng);
        assert!(!o.success);
        assert_eq!(o.delivered_sources, 2); // sink + node 1
    }

    #[test]
    fn fig4_trees_reproduce_their_reliabilities() {
        // The toy network of Fig. 4; empirical check of 0.36 vs 0.648.
        let mut b = NetworkBuilder::new(6);
        b.add_edge(4, 0, 1.0).unwrap();
        b.add_edge(5, 0, 1.0).unwrap();
        b.add_edge(2, 4, 0.5).unwrap();
        b.add_edge(3, 4, 0.9).unwrap();
        b.add_edge(1, 5, 0.8).unwrap();
        b.add_edge(2, 5, 0.9).unwrap();
        let net = b.build().unwrap();
        let t_a = AggregationTree::from_edges(
            n(0),
            6,
            &[(n(4), n(0)), (n(5), n(0)), (n(2), n(4)), (n(3), n(4)), (n(1), n(5))],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let est = estimate_reliability(&net, &t_a, 80_000, &mut rng);
        assert!((est - 0.36).abs() < 0.01, "tree (a): {est}");
    }
}

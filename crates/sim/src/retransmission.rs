//! The ETX strawman of Fig. 1: retransmit every hop until success and
//! count the packets one aggregation round costs.

use rand::{Rng, RngExt};
use wsn_model::{AggregationTree, Network};

/// Expected packets per round under retransmit-until-success:
/// `Σ_{e∈T} ETX(e) = Σ 1/q_e`. Infinite if any tree link is dead.
pub fn expected_packets_per_round(net: &Network, tree: &AggregationTree) -> f64 {
    tree.edges()
        .map(|(c, p)| {
            let e = net.find_edge(c, p).expect("tree edge must exist");
            net.link(e).prr().etx()
        })
        .sum()
}

/// The core geometric-retry loop: repeats `attempt` until it reports
/// success or `cap` tries have been spent. Returns `(attempts, succeeded)`
/// with `attempts ≥ 1` whenever `cap ≥ 1`.
///
/// This is the machinery shared by the data plane (retransmit-until-success,
/// Fig. 1) and the control plane's reliable-delivery layer in `wsn-proto`
/// (per-hop ack/retry over a lossy channel).
pub fn retry_until(cap: usize, mut attempt: impl FnMut() -> bool) -> (usize, bool) {
    let mut attempts = 0usize;
    while attempts < cap {
        attempts += 1;
        if attempt() {
            return (attempts, true);
        }
    }
    (attempts, false)
}

/// Geometric number of attempts until one success with probability `q`,
/// capped at `cap` (bounds pathological links with 0 PRR).
pub fn geometric_attempts<R: Rng + ?Sized>(q: f64, cap: usize, rng: &mut R) -> usize {
    retry_until(cap, || rng.random::<f64>() < q).0
}

/// Simulates one round: per hop, geometric number of attempts until the
/// packet is received. `attempt_cap` bounds pathological links (0 PRR).
pub fn simulate_packets_per_round<R: Rng + ?Sized>(
    net: &Network,
    tree: &AggregationTree,
    attempt_cap: usize,
    rng: &mut R,
) -> usize {
    tree.edges()
        .map(|(c, p)| {
            let e = net.find_edge(c, p).expect("tree edge must exist");
            let q = net.link(e).prr().value();
            geometric_attempts(q, attempt_cap, rng)
        })
        .sum()
}

/// Average simulated packets per round over `rounds` rounds.
pub fn average_packets_per_round<R: Rng + ?Sized>(
    net: &Network,
    tree: &AggregationTree,
    rounds: usize,
    rng: &mut R,
) -> f64 {
    assert!(rounds > 0);
    let total: usize =
        (0..rounds).map(|_| simulate_packets_per_round(net, tree, 10_000, rng)).sum();
    total as f64 / rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wsn_model::{AggregationTree, NetworkBuilder, NodeId};

    fn uniform_chain(n: usize, q: f64) -> (Network, AggregationTree) {
        let mut b = NetworkBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, q).unwrap();
        }
        let net = b.build().unwrap();
        let edges: Vec<_> = (0..n - 1).map(|i| (NodeId::new(i), NodeId::new(i + 1))).collect();
        let tree = AggregationTree::from_edges(NodeId::SINK, n, &edges).unwrap();
        (net, tree)
    }

    #[test]
    fn paper_anchor_points() {
        // Fig. 1 at 16 nodes: 15 packets at q = 1.0, 150 at q = 0.1.
        let (net, tree) = uniform_chain(16, 1.0);
        assert!((expected_packets_per_round(&net, &tree) - 15.0).abs() < 1e-9);
        let (net, tree) = uniform_chain(16, 0.1);
        assert!((expected_packets_per_round(&net, &tree) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn simulation_matches_expectation() {
        let (net, tree) = uniform_chain(16, 0.5);
        let mut rng = StdRng::seed_from_u64(6);
        let avg = average_packets_per_round(&net, &tree, 20_000, &mut rng);
        let expect = expected_packets_per_round(&net, &tree);
        assert!((avg - expect).abs() / expect < 0.02, "simulated {avg} vs expected {expect}");
    }

    #[test]
    fn perfect_links_send_exactly_once() {
        let (net, tree) = uniform_chain(8, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(simulate_packets_per_round(&net, &tree, 100, &mut rng), 7);
    }

    #[test]
    fn attempt_cap_bounds_dead_links() {
        let (net, tree) = uniform_chain(3, 0.0);
        let mut rng = StdRng::seed_from_u64(8);
        let pkts = simulate_packets_per_round(&net, &tree, 50, &mut rng);
        assert_eq!(pkts, 100); // 2 links × cap
        assert!(expected_packets_per_round(&net, &tree).is_infinite());
    }

    #[test]
    fn packets_grow_as_quality_drops() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut prev = 0.0;
        for q in [1.0, 0.8, 0.6, 0.4, 0.2] {
            let (net, tree) = uniform_chain(16, q);
            let avg = average_packets_per_round(&net, &tree, 3000, &mut rng);
            assert!(avg > prev, "packets must grow as q drops: {avg} after {prev}");
            prev = avg;
        }
    }
}

//! Minimal offline stand-in for `criterion`. No statistics — each
//! registered benchmark body is executed once so `cargo bench` still
//! smoke-tests the hot paths and the bench targets keep compiling.

use std::fmt;
use std::time::Duration;

/// Drop-in for `criterion::Criterion`; configuration is accepted and
/// ignored, benchmark bodies run once.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

/// Drop-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let start = std::time::Instant::now();
        let mut b = Bencher { iterations: 0 };
        f(&mut b, input);
        println!("bench {label}: {} iteration(s) in {:?}", b.iterations, start.elapsed());
        self
    }

    pub fn finish(self) {}
}

/// Drop-in for `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

fn run_once<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let start = std::time::Instant::now();
    let mut b = Bencher { iterations: 0 };
    f(&mut b);
    println!("bench {label}: {} iteration(s) in {:?}", b.iterations, start.elapsed());
}

/// Drop-in for `criterion::Bencher`; `iter` runs the body once.
pub struct Bencher {
    iterations: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        self.iterations += 1;
        std::hint::black_box(f());
    }
}

/// Re-export mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

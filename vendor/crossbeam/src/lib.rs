//! Minimal offline stand-in for `crossbeam`: [`scope`] with crossbeam's
//! signature (spawned closures receive the scope, worker panics surface as
//! an `Err` from `scope` itself), implemented over `std::thread::scope`,
//! plus MPMC [`channel`]s with crossbeam-channel's bounded/unbounded
//! surface and disconnect semantics.

pub mod channel;

use std::any::Any;

/// A scope handle passed to [`scope`]'s closure and to every spawned worker.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Runs `f` with a [`Scope`]; joins every spawned thread before returning.
/// A panic in any worker (or in `f`) is reported as `Err` with the panic
/// payload, matching crossbeam's behaviour.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::scope;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_environment() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}

//! Offline stand-in for `crossbeam-channel`: multi-producer multi-consumer
//! channels with crossbeam's surface — [`bounded`] / [`unbounded`]
//! constructors, blocking `send`/`recv`, non-blocking `try_*` variants,
//! `recv_timeout`, and disconnect semantics driven by sender/receiver
//! reference counts. Implemented over a mutex-guarded deque with two
//! condition variables; correctness (no lost wakeups, no deadlock on
//! disconnect) over throughput, which is all the solve service needs for
//! its supervisor and epitaph channels.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Sending on a channel with no receivers left.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Non-blocking send failures.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity (message returned).
    Full(T),
    /// No receivers left (message returned).
    Disconnected(T),
}

/// Receiving on an empty channel with no senders left.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Non-blocking receive failures.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and no senders left.
    Disconnected,
}

/// Timed receive failures.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing queued.
    Timeout,
    /// Empty and no senders left.
    Disconnected,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Bounded capacity; `None` for unbounded.
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A panic while holding the lock leaves consistent state (the
        // queue is only mutated by push/pop); recover rather than wedge
        // every other worker on the fleet.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half; clone freely (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clone freely (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A channel holding at most `cap` queued messages; `send` blocks when
/// full. `cap = 0` is rounded up to 1 (the stand-in has no rendezvous
/// mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make(Some(cap.max(1)))
}

/// A channel with no capacity bound; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Blocks until the message is queued or every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut g = self.shared.lock();
        loop {
            if g.receivers == 0 {
                return Err(SendError(msg));
            }
            if self.shared.cap.is_none_or(|c| g.queue.len() < c) {
                g.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            g = self.shared.not_full.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Queues the message if there is room right now.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut g = self.shared.lock();
        if g.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if self.shared.cap.is_some_and(|c| g.queue.len() >= c) {
            return Err(TrySendError::Full(msg));
        }
        g.queue.push_back(msg);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut g = self.shared.lock();
        loop {
            if let Some(msg) = g.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if g.senders == 0 {
                return Err(RecvError);
            }
            g = self.shared.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pops a message if one is queued right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut g = self.shared.lock();
        match g.queue.pop_front() {
            Some(msg) => {
                self.shared.not_full.notify_one();
                Ok(msg)
            }
            None if g.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.shared.lock();
        loop {
            if let Some(msg) = g.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if g.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) =
                self.shared.not_empty.wait_timeout(g, left).unwrap_or_else(|e| e.into_inner());
            g = guard;
            if res.timed_out() && g.queue.is_empty() {
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut g = self.shared.lock();
        g.senders -= 1;
        if g.senders == 0 {
            // Wake every blocked receiver so it can observe disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut g = self.shared.lock();
        g.receivers -= 1;
        if g.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 100);
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn recv_sees_disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_sees_disconnect() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
    }

    #[test]
    fn blocked_sender_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let t = s.spawn(|| tx.send(2));
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv().unwrap(), 1);
            t.join().unwrap().unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        let (tx, rx) = bounded(4);
        let total = 200;
        let got = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..total / 4 {
                        tx.send(p * (total / 4) + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..4 {
                let rx = rx.clone();
                let got = &got;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        got.lock().unwrap().push(v);
                    }
                });
            }
        });
        let mut vals = got.into_inner().unwrap();
        vals.sort_unstable();
        assert_eq!(vals, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_receiver_wakes_on_last_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        std::thread::scope(|s| {
            let t = s.spawn(|| rx.recv());
            std::thread::sleep(Duration::from_millis(10));
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        });
    }
}

//! Minimal offline stand-in for the `bytes` crate: a cheaply-clonable
//! immutable byte buffer ([`Bytes`]), a growable builder ([`BytesMut`]),
//! and big-endian cursor traits ([`Buf`], [`BufMut`]) — only the surface
//! the wire-protocol code uses.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable reference-counted byte buffer; clones share the allocation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "{:02x}", b)?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer that freezes into a [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; integer reads are big-endian and panic
/// when the source is exhausted (callers check [`Buf::remaining`] first).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16(&mut self) -> u16;
    fn get_u32(&mut self) -> u32;
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u16(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_be_bytes([head[0], head[1]])
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes([head[0], head[1], head[2], head[3]])
    }

    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(head);
        u64::from_be_bytes(raw)
    }
}

/// Write cursor; integer writes are big-endian.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.put_u8(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.put_u16(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.put_u32(v);
    }

    fn put_u64(&mut self, v: u64) {
        self.data.put_u64(v);
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.data.put_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xA1);
        b.put_u16(0xBEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        let frozen = b.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 11);
        assert_eq!(cursor.get_u8(), 0xA1);
        assert_eq!(cursor.get_u16(), 0xBEEF);
        assert_eq!(cursor.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&b[..], &[1, 2, 3]);
    }
}

//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`]/[`prop_assert!`] macros, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`/`boxed`, `any::<T>()`, range and tuple and
//! `Vec` strategies, and [`collection::vec`]. Failing cases are reported
//! with the generating seed but are **not shrunk** — good enough to keep
//! the property suites running in a network-less build environment.

pub mod test_runner {
    /// Deterministic per-test generator (splitmix64 keyed on the test name).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }
}

/// How a single generated case ended, when not `Ok`.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — draw a fresh case, don't count this one.
    Reject,
    /// `prop_assert!`-style failure with its message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }

    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values. Unlike real proptest there is no
    /// value tree and no shrinking; `generate` draws one value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Rc::new(self) }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy (cheap to clone; single-threaded use only,
    /// matching how the test macros drive it).
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: Rc::clone(&self.inner) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Full-domain strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// One independent draw per element, like proptest's `Vec<S>` strategy.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification accepted by [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize % span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: `size` is an exact count or a range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: `{:?}` == `{:?}`", format!($($fmt)+), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// The proptest entry macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with real
/// proptest) running `cases` random draws of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@each ($cfg); $($rest)*);
    };
    (@each ($cfg:expr); ) => {};
    (@each ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut drawn: u32 = 0;
            while accepted < config.cases {
                drawn += 1;
                assert!(
                    drawn <= config.cases.saturating_mul(20).max(1000),
                    "too many rejected cases (prop_assume! too strict?)"
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", drawn, msg)
                    }
                }
            }
        }
        $crate::proptest!(@each ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@each ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..20).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependency((n, k) in arb_pair()) {
            prop_assert!(k < n);
        }

        #[test]
        fn collection_vec_sizes(v in collection::vec(any::<u8>(), 0..8), w in collection::vec(1u32..5, 3)) {
            prop_assert!(v.len() < 8);
            prop_assert_eq!(w.len(), 3);
            prop_assert!(w.iter().all(|&x| (1..5).contains(&x)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn boxed_vec_strategy(parents in (2usize..9).prop_flat_map(|n| {
            let per: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
            per
        })) {
            for (i, &p) in parents.iter().enumerate() {
                prop_assert!(p <= i);
            }
        }
    }
}

//! No-op `Serialize`/`Deserialize` derives: the offline serde stand-in
//! keeps the annotations compiling without generating any impls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

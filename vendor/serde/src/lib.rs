//! Minimal offline stand-in for `serde`. The workspace only annotates types
//! with `#[derive(Serialize, Deserialize)]` as forward-looking metadata — no
//! code path serializes anything yet — so the traits are markers and the
//! derives expand to nothing.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

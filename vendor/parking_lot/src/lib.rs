//! Minimal offline stand-in for `parking_lot`: a [`Mutex`] with the
//! poison-free API (`lock` returns the guard directly, `into_inner`
//! returns the value directly), backed by `std::sync::Mutex`.

use std::ops::{Deref, DerefMut};

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}

//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++), the core
//! [`Rng`] trait, and the [`RngExt`] extension methods `random`,
//! `random_range` and `random_bool`. Determinism per seed is part of the
//! contract — experiment outputs are reproducible across runs.

/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator.
pub trait StandardUniform: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval. The single blanket
/// `SampleRange` impl below pivots on this trait so type inference can
/// flow from the requested output type back into range literals, as with
/// the real rand crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `lo..hi` (`inclusive = false`) or `lo..=hi`.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range in random_range");
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        assert!(lo < hi, "empty range in random_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in random_range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++ seeded through
    /// splitmix64, as recommended by the xoshiro authors.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(-3i32..4);
            assert!((-3..4).contains(&v));
            let w = rng.random_range(0u32..=10);
            assert!(w <= 10);
            let f = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }
}

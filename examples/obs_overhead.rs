//! A/B harness: IRA wall time on the rand-80 bench rung with and without
//! an ambient metrics registry installed. Used to bound instrumentation
//! overhead; not part of the figure suite.

use mrlc_core::{solve_ira, IraConfig, MrlcInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wsn_model::{lifetime, EnergyModel};
use wsn_testbed::{random_graph, RandomGraphConfig};

fn main() {
    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.99;
    let gcfg = RandomGraphConfig { n: 80, link_probability: 0.3, ..RandomGraphConfig::default() };
    let mut rng = StdRng::seed_from_u64(4242 + 80);
    let net = random_graph(&gcfg, &mut rng).expect("connected");
    let inst = MrlcInstance::new(net, model, lc).expect("valid");
    let cfg = IraConfig::default();
    let reps = 5;
    let mut bare = f64::MAX;
    let mut instrumented = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = solve_ira(&inst, &cfg).unwrap();
        bare = bare.min(t.elapsed().as_secs_f64() * 1e3);
        let obs = wsn_obs::Obs::detached();
        let _g = wsn_obs::install(obs);
        let t = Instant::now();
        let _ = solve_ira(&inst, &cfg).unwrap();
        instrumented = instrumented.min(t.elapsed().as_secs_f64() * 1e3);
    }
    println!(
        "bare {bare:.1} ms  instrumented {instrumented:.1} ms  overhead {:+.2}%",
        (instrumented / bare - 1.0) * 100.0
    );
}

//! A/B harness: IRA wall time on the rand-80 bench rung bare versus with
//! the flight recorder armed (an ambient collector whose ring captures
//! every span/event at bounded cost). Used to bound instrumentation
//! overhead; not part of the figure suite.
//!
//! `--gate=PCT` exits nonzero when the measured overhead exceeds `PCT`
//! percent — the CI trace-smoke job runs `--gate=3` so the always-on
//! recorder can never silently grow a tax on the solver.

use mrlc_core::{solve_ira, IraConfig, MrlcInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wsn_model::{lifetime, EnergyModel};
use wsn_testbed::{random_graph, RandomGraphConfig};

fn main() {
    let gate: Option<f64> = std::env::args()
        .find_map(|a| a.strip_prefix("--gate=").map(String::from))
        .map(|v| v.parse().expect("--gate expects a percentage"));
    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, 4) * 0.99;
    let gcfg = RandomGraphConfig { n: 80, link_probability: 0.3, ..RandomGraphConfig::default() };
    let mut rng = StdRng::seed_from_u64(4242 + 80);
    let net = random_graph(&gcfg, &mut rng).expect("connected");
    let inst = MrlcInstance::new(net, model, lc).expect("valid");
    let cfg = IraConfig::default();
    // Untimed warmup so neither arm pays the first-touch cost of page
    // faults and cold caches.
    let _ = solve_ira(&inst, &cfg).unwrap();
    let reps = 9;
    let mut bare = f64::MAX;
    let mut instrumented = f64::MAX;
    // Interleave the reps and take the min of each arm: the min damps
    // one-sided scheduler noise far better than a mean on shared runners.
    for _ in 0..reps {
        let t = Instant::now();
        let _ = solve_ira(&inst, &cfg).unwrap();
        bare = bare.min(t.elapsed().as_secs_f64() * 1e3);
        let obs = wsn_obs::Obs::with_flight(wsn_obs::Clock::wall(), 256);
        let _g = wsn_obs::install(obs.clone());
        let t = Instant::now();
        let _ = solve_ira(&inst, &cfg).unwrap();
        instrumented = instrumented.min(t.elapsed().as_secs_f64() * 1e3);
        assert!(
            obs.flight().map(|r| r.pushed()).unwrap_or(0) > 0,
            "the armed ring must actually capture records"
        );
    }
    let overhead = (instrumented / bare - 1.0) * 100.0;
    println!("bare {bare:.1} ms  flight-armed {instrumented:.1} ms  overhead {overhead:+.2}%");
    if let Some(limit) = gate {
        if overhead > limit {
            eprintln!("obs-overhead: {overhead:+.2}% exceeds the {limit}% gate");
            std::process::exit(1);
        }
        println!("obs-overhead: within the {limit}% gate");
    }
}

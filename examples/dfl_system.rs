//! The paper's §VII-A scenario end to end: synthesize the 16-node
//! device-free-localization deployment, run AAML / MST / IRA, and verify
//! the trees' reliability empirically with the round simulator.
//!
//! ```text
//! cargo run --example dfl_system
//! ```

use mrlc_core::{solve_ira, IraConfig, MrlcInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_baselines::{aaml_tree, mst, AamlConfig};
use wsn_model::{lifetime, reliability, EnergyModel, PaperCost};
use wsn_radio::LinkModel;
use wsn_sim::estimate_reliability;
use wsn_testbed::{dfl_network, write_trace, DflConfig};

fn main() {
    let cfg = DflConfig::default();
    let net = dfl_network(&cfg, &LinkModel::default(), 2015).expect("DFL is connected");
    let model = EnergyModel::PAPER;
    println!(
        "DFL deployment: {} nodes on a {:.1} m square, {} estimated links",
        net.n(),
        cfg.side_m,
        net.num_edges()
    );

    // AAML over the q >= 0.95 filtered graph, as the paper evaluates it.
    let filtered = net
        .restrict_edges(|l| l.prr().value() >= 0.95)
        .expect("filtered DFL graph stays connected");
    let aaml = aaml_tree(&filtered, &model, None, &AamlConfig::default()).unwrap();
    let mst_tree = mst(&net).unwrap();

    let inst = MrlcInstance::new(net.clone(), model, aaml.lifetime).unwrap();
    let ira = solve_ira(&inst, &IraConfig::default()).expect("feasible at L_AAML");

    let mut rng = StdRng::seed_from_u64(1);
    println!(
        "\n{:<6} {:>8} {:>12} {:>12} {:>14}",
        "tree", "cost", "Q (analytic)", "Q (50k sims)", "lifetime"
    );
    for (label, tree) in [("AAML", &aaml.tree), ("MST", &mst_tree), ("IRA", &ira.tree)] {
        let cost = PaperCost::of_tree(&net, tree).0;
        let q = reliability::tree_reliability(&net, tree);
        let q_sim = estimate_reliability(&net, tree, 50_000, &mut rng);
        let life = lifetime::network_lifetime(&net, tree, &model);
        println!("{label:<6} {cost:>8.1} {q:>12.4} {q_sim:>12.4} {life:>14.3e}");
    }

    println!(
        "\nIRA matches AAML's lifetime ({:.3e} vs {:.3e}) at a fraction of its cost.",
        ira.lifetime, aaml.lifetime
    );

    // The whole scenario is a plain-text trace you can save and share:
    let trace = write_trace(&net);
    println!("\ntrace preview (first 5 lines):");
    for line in trace.lines().take(5) {
        println!("  {line}");
    }
}

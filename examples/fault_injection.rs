//! Fault injection against the distributed update protocol: control frames
//! are dropped, duplicated and reordered by a lossy channel derived from the
//! network's own PRRs, a router crashes mid-epoch, and the control plane
//! heals itself — per-hop ack/retry carries the floods, the sink re-homes
//! the crash orphans under the lifetime bound, and heartbeat-digest
//! anti-entropy repairs whatever divergence slipped through.
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use wsn_model::{EnergyModel, NetworkBuilder, NodeId};
use wsn_proto::{DistributedNetwork, FaultPlan, LossyChannel, RetryPolicy};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn main() {
    // The Fig. 5 nine-node tree, embedded in a network with spare links so
    // crash orphans have somewhere to go.
    let mut b = NetworkBuilder::new(9);
    for (u, v, q) in [
        (0usize, 7usize, 0.99),
        (0, 4, 0.99),
        (0, 8, 0.99),
        (4, 3, 0.98),
        (4, 2, 0.98),
        (2, 6, 0.98),
        (8, 5, 0.98),
        (8, 1, 0.98),
        // spares
        (7, 4, 0.95),
        (7, 3, 0.93),
        (0, 2, 0.92),
        (5, 6, 0.90),
        (1, 3, 0.90),
    ] {
        b.add_edge(u, v, q).unwrap();
    }
    let net = b.build().unwrap();

    let tree = wsn_model::AggregationTree::from_edges(
        n(0),
        9,
        &[
            (n(0), n(7)),
            (n(0), n(4)),
            (n(0), n(8)),
            (n(4), n(3)),
            (n(4), n(2)),
            (n(2), n(6)),
            (n(8), n(5)),
            (n(8), n(1)),
        ],
    )
    .unwrap();

    // The channel's per-link loss comes from the network's PRRs, degraded
    // hard (raised to the 8th power) so retries actually happen, plus
    // duplication and reordering.
    let mut plan = FaultPlan::from_network_prr(&net).with_seed(2015);
    if let wsn_proto::LossModel::PerLink { map, .. } = &mut plan.loss {
        for loss in map.values_mut() {
            let q = 1.0 - *loss;
            *loss = 1.0 - q.powi(8);
        }
    }
    let plan = plan.with_duplication(0.05).with_reordering(0.05);
    println!("fault plan: link (0,4) loss = {:.3}", plan.loss(n(0), n(4)));

    let mut ch = LossyChannel::new(plan);
    let policy = RetryPolicy::default();
    let mut wire = DistributedNetwork::new(9);

    // Phase 1: announce the tree over the lossy channel.
    let d = wire.announce_lossy(&tree, &mut ch, &policy).unwrap();
    println!(
        "announce: {} data frames + {} acks over {} slots, {} failed hop(s), unreachable {:?}",
        d.frames, d.acks, d.slots, d.failed_hops, d.unreachable
    );
    let r = wire.resync(&mut ch, &policy, 50);
    println!(
        "resync:   converged={} after {} round(s), {} re-announce(s)",
        r.converged, r.rounds, r.reannounces
    );

    // Phase 2: a parent change rides the same lossy channel.
    let d = wire.parent_change_lossy(n(4), n(7), &mut ch, &policy).unwrap();
    println!(
        "parent-change 4->7: {} frames + {} acks, {} failed hop(s)",
        d.frames, d.acks, d.failed_hops
    );
    let r = wire.resync(&mut ch, &policy, 50);
    println!("resync:   converged={} ({} re-announces)", r.converged, r.reannounces);

    // Phase 3: node 8 (a router with two children) crashes mid-epoch.
    println!("\n*** node 8 crashes ***");
    ch.crash(n(8));
    let model = EnergyModel::PAPER;
    let lc = 1.0; // a loose lifetime bound: any neighbour may adopt
    let rep = wire.repair_crashed(&net, lc, &model, n(8), &mut ch, &policy).unwrap();
    for (orphan, parent) in &rep.rehomed {
        println!("orphan {} re-homed under {}", orphan.index(), parent.index());
    }
    if !rep.stranded.is_empty() {
        println!("stranded: {:?}", rep.stranded);
    }
    let r = wire.resync(&mut ch, &policy, 50);
    println!(
        "resync:   converged={} after {} round(s), {} re-announce(s)",
        r.converged, r.rounds, r.reannounces
    );

    let final_tree = wire.tree();
    println!("\nfinal tree (live replicas byte-identical: {}):", wire.is_consistent_alive(&ch));
    for v in 1..9 {
        if ch.is_crashed(n(v)) {
            println!("  node {v}: CRASHED");
        } else {
            println!("  node {v} -> parent {}", final_tree.parent(n(v)).unwrap().index());
        }
    }
    let s = &ch.stats;
    println!(
        "\nchannel: offered {} delivered {} dropped {} duplicated {} reordered {} to-crashed {}",
        s.offered, s.delivered, s.dropped, s.duplicated, s.reordered, s.to_crashed
    );
}

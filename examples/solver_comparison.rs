//! Solve one MRLC instance three ways — IRA (the paper), Lagrangian dual
//! ascent, and exact branch-and-bound — and show how they relate.
//!
//! ```text
//! cargo run --example solver_comparison [seed]
//! ```

use mrlc_core::{
    lagrangian_dbmst, solve_exact, solve_ira, ExactConfig, ExactOutcome, IraConfig,
    LagrangianConfig, MrlcInstance,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_model::{lifetime, EnergyModel, PaperCost};
use wsn_testbed::{random_graph, RandomGraphConfig};

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let mut rng = StdRng::seed_from_u64(seed);
    let net = random_graph(
        &RandomGraphConfig { n: 12, link_probability: 0.5, ..RandomGraphConfig::default() },
        &mut rng,
    )
    .expect("connected instance");
    let model = EnergyModel::PAPER;
    let lc = lifetime::node_lifetime(3000.0, &model, 3) * 0.999;
    let inst = MrlcInstance::new(net, model, lc).expect("valid instance");
    println!(
        "instance: n = 12, m = {}, LC = {:.3e} rounds (≤3 children anywhere)\n",
        inst.network().num_edges(),
        lc
    );

    let ira = solve_ira(&inst, &IraConfig::default()).expect("feasible");
    println!(
        "IRA        : cost {:>7.2}  ({} LP solves, {} cuts)",
        PaperCost::from_nat(ira.cost),
        ira.stats.lp_solves,
        ira.stats.cuts_added
    );

    let lag = lagrangian_dbmst(&inst, &LagrangianConfig::default());
    match &lag.best_tree {
        Some(_) => println!(
            "Lagrangian : cost {:>7.2}  (dual bound {:.2}, gap {:.3}%)",
            PaperCost::from_nat(lag.best_cost),
            PaperCost::from_nat(lag.lower_bound),
            lag.gap().unwrap_or(f64::NAN) * 100.0
        ),
        None => println!("Lagrangian : no feasible incumbent"),
    }

    match solve_exact(&inst, &ExactConfig::default()) {
        ExactOutcome::Optimal { cost, nodes, .. } => {
            println!(
                "exact B&B  : cost {:>7.2}  ({} nodes explored)",
                PaperCost::from_nat(cost),
                nodes
            );
            println!(
                "\nIRA is {:.2}% above the optimum; the Lagrangian dual certifies\n\
                 a lower bound within {:.2}% of it.",
                (ira.cost / cost - 1.0) * 100.0,
                (1.0 - lag.lower_bound / cost) * 100.0
            );
        }
        other => println!("exact B&B  : {other:?}"),
    }
}

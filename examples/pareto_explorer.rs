//! Sweep the full lifetime–reliability trade-off of a deployment — the
//! decision surface MRLC's single `LC` knob samples one point of.
//!
//! ```text
//! cargo run --example pareto_explorer [seed]
//! ```

use mrlc_core::{dominant_points, lifetime_bounds, pareto_frontier};
use wsn_model::EnergyModel;
use wsn_radio::LinkModel;
use wsn_testbed::{dfl_network, DflConfig};

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2015);
    let net =
        dfl_network(&DflConfig::default(), &LinkModel::default(), seed).expect("DFL is connected");
    let model = EnergyModel::PAPER;

    let bounds = lifetime_bounds(&net, &model).expect("LP feasibility check");
    println!(
        "achievable lifetime bracket: [{:.3e}, {:.3e}] rounds",
        bounds.heuristic_lower, bounds.fractional_upper
    );

    let pts = pareto_frontier(&net, model, 20).expect("sweep");
    let dominant = dominant_points(&pts);
    println!("\n{:>12} {:>12} {:>8} {:>12}  dominant", "LC", "lifetime", "cost", "reliability");
    for p in &pts {
        let star = if dominant
            .iter()
            .any(|q| (q.lc - p.lc).abs() < 1e-6 && (q.cost - p.cost).abs() < 1e-9)
        {
            "  *"
        } else {
            ""
        };
        println!(
            "{:>12.3e} {:>12.3e} {:>8.1} {:>12.4}{star}",
            p.lc, p.lifetime, p.cost, p.reliability
        );
    }
    println!(
        "\n{} swept points collapse to {} dominant regimes — every deployment-\n\
         relevant choice of LC lands on one of those trees.",
        pts.len(),
        dominant.len()
    );
}

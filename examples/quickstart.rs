//! Quickstart: build a small unreliable WSN, ask IRA for the most reliable
//! aggregation tree that still meets a lifetime bound, and inspect it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mrlc_core::{solve_ira, verify_tree, IraConfig, MrlcInstance};
use wsn_model::{EnergyModel, NetworkBuilder, NodeId, PaperCost};

fn main() {
    // 1. Describe the network: node 0 is the sink; every link carries its
    //    measured packet reception ratio (PRR).
    let mut b = NetworkBuilder::new(6);
    b.add_edge(0, 1, 0.99).unwrap();
    b.add_edge(0, 2, 0.97).unwrap();
    b.add_edge(1, 3, 0.96).unwrap();
    b.add_edge(2, 4, 0.98).unwrap();
    b.add_edge(2, 5, 0.95).unwrap();
    b.add_edge(1, 4, 0.90).unwrap();
    b.add_edge(3, 5, 0.92).unwrap();
    b.add_edge(0, 5, 0.85).unwrap();
    // Node 3 is running low on battery.
    b.set_energy(NodeId::new(3), 900.0).unwrap();
    let net = b.build().expect("connected network");

    // 2. Pick the energy model (the paper's TelosB measurements) and the
    //    lifetime bound LC in aggregation rounds.
    let model = EnergyModel::PAPER;
    let lc = 2.0e6;

    // 3. Solve.
    let inst = MrlcInstance::new(net, model, lc).expect("valid instance");
    let sol = solve_ira(&inst, &IraConfig::default()).expect("feasible instance");

    println!("IRA aggregation tree (child -> parent):");
    for (c, p) in sol.tree.edges() {
        println!("  {c} -> {p}");
    }
    println!();
    println!("reliability Q(T)      = {:.4}", sol.reliability);
    println!("cost (paper units)    = {:.1}", PaperCost::from_nat(sol.cost));
    println!("lifetime L(T)         = {:.3e} rounds (LC = {lc:.3e})", sol.lifetime);
    println!("meets LC              = {}", sol.meets_lc);
    println!(
        "solver: {} outer iterations, {} LP solves, {} subtour cuts",
        sol.stats.iterations, sol.stats.lp_solves, sol.stats.cuts_added
    );

    // 4. Verify independently.
    let v = verify_tree(&inst, &sol.tree);
    assert!(v.is_valid_spanning_tree && v.meets_lc);
    println!("\nindependent verification passed.");
}

//! The distributed protocol in action: a tree link degrades, the affected
//! child re-homes using only local information plus the shared Prüfer code,
//! and every replica converges to the identical new tree.
//!
//! ```text
//! cargo run --example distributed_update
//! ```

use wsn_model::{EnergyModel, NetworkBuilder, NodeId, PaperCost, Prr};
use wsn_proto::ProtocolState;
use wsn_prufer::PruferCode;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn main() {
    // The Fig. 5 nine-node tree, embedded in a network with spare links.
    let mut b = NetworkBuilder::new(9);
    for (u, v, q) in [
        (0usize, 7usize, 0.99),
        (0, 4, 0.99),
        (0, 8, 0.99),
        (4, 3, 0.98),
        (4, 2, 0.98),
        (2, 6, 0.98),
        (8, 5, 0.98),
        (8, 1, 0.98),
        // spares
        (7, 4, 0.95),
        (5, 6, 0.90),
        (1, 3, 0.90),
    ] {
        b.add_edge(u, v, q).unwrap();
    }
    let mut net = b.build().unwrap();

    let tree = wsn_model::AggregationTree::from_edges(
        n(0),
        9,
        &[
            (n(0), n(7)),
            (n(0), n(4)),
            (n(0), n(8)),
            (n(4), n(3)),
            (n(4), n(2)),
            (n(2), n(6)),
            (n(8), n(5)),
            (n(8), n(1)),
        ],
    )
    .unwrap();

    let code = PruferCode::encode(&tree).unwrap();
    println!("initial Prüfer code P = {:?}", code.labels());
    println!("initial tree cost     = {}", PaperCost::of_tree(&net, &tree));

    // Every sensor replicates the same coded state.
    let lc = 1.0e6;
    let mut sensor_a = ProtocolState::new(&tree, lc, EnergyModel::PAPER).unwrap();
    let mut sensor_b = sensor_a.clone();

    // The (0, 4) link collapses.
    let e = net.find_edge(n(0), n(4)).unwrap();
    net.set_prr(e, Prr::new(0.40).unwrap());
    println!("\nlink (0, 4) degrades to PRR 0.40 — node 4 reacts:");

    let out = sensor_a.handle_link_worse(&net, n(4));
    sensor_b.handle_link_worse(&net, n(4)); // same record, same splice
    println!("  parent change: 4 -> {:?}", sensor_a.coded().parent(n(4)).unwrap());
    println!("  broadcast messages: {}", out.messages);
    println!("  new P' = {:?}", sensor_a.coded().prufer_labels());
    println!("  new D' = {:?}", sensor_a.coded().sequence());
    assert_eq!(sensor_a.coded(), sensor_b.coded(), "replicas must agree");

    let new_tree = sensor_a.tree();
    println!(
        "\nrepaired tree cost    = {} (was {} on the degraded network)",
        PaperCost::of_tree(&net, &new_tree),
        PaperCost::of_tree(&net, &tree),
    );
    println!("replicas converged to the identical coded tree.");
}

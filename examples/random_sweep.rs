//! A miniature of the paper's random-graph evaluation (Figs. 8–10): sweep
//! a handful of `G(16, p)` instances and print the AAML / IRA / MST cost
//! triples plus where IRA's reliability gain comes from.
//!
//! ```text
//! cargo run --example random_sweep [instances]
//! ```

use wsn_experiments::fig8;
use wsn_model::PaperCost;
use wsn_testbed::EnergyDistribution;

fn main() {
    let instances: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);

    for (label, energy) in [
        ("equal energy (3000 J)", EnergyDistribution::Uniform(3000.0)),
        (
            "heterogeneous energy [1500 J, 5000 J]",
            EnergyDistribution::Heterogeneous { lo: 1500.0, hi: 5000.0 },
        ),
    ] {
        let cfg = fig8::Config { instances, energy, ..fig8::Config::default() };
        let rows = fig8::run(&cfg);
        println!("=== {instances} random G(16, 0.7) instances, {label} ===");
        println!("{:>4} {:>8} {:>8} {:>8} {:>10}", "i", "AAML", "IRA", "MST", "IRA rel.");
        for r in &rows {
            println!(
                "{:>4} {:>8.1} {:>8.1} {:>8.1} {:>10.4}",
                r.instance,
                r.aaml_cost,
                r.ira_cost,
                r.mst_cost,
                PaperCost(r.ira_cost).reliability(),
            );
        }
        let mean =
            |sel: fn(&fig8::Row) -> f64| rows.iter().map(sel).sum::<f64>() / rows.len() as f64;
        println!(
            "means: AAML {:.1}, IRA {:.1}, MST {:.1} -> IRA spends {:.0}% of AAML's cost\n",
            mean(|r| r.aaml_cost),
            mean(|r| r.ira_cost),
            mean(|r| r.mst_cost),
            100.0 * mean(|r| r.ira_cost) / mean(|r| r.aaml_cost),
        );
    }
}

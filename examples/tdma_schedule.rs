//! Translate tree shape into air time: build the IRA, MST and SPT trees on
//! the DFL deployment and print their interference-aware TDMA schedules.
//!
//! ```text
//! cargo run --example tdma_schedule
//! ```

use wsn_experiments::workloads::{aaml_paper_protocol, ira_at};
use wsn_model::EnergyModel;
use wsn_radio::LinkModel;
use wsn_sim::{greedy_schedule, round_latency_slots, validate_schedule};
use wsn_testbed::{dfl_network, DflConfig};

fn main() {
    let net =
        dfl_network(&DflConfig::default(), &LinkModel::default(), 2015).expect("DFL is connected");
    let model = EnergyModel::PAPER;
    let aaml = aaml_paper_protocol(&net, &model).expect("AAML runs");
    let ira = ira_at(&net, model, aaml.lifetime * 0.7).expect("feasible");
    let mst = wsn_baselines::mst(&net).unwrap();
    let spt = wsn_baselines::spt(&net).unwrap();

    println!("{:<6} {:>6} {:>12} {:>14}", "tree", "depth", "TDMA slots", "slot contents");
    for (name, tree) in [("IRA", &ira.tree), ("MST", &mst), ("SPT", &spt)] {
        let sched = greedy_schedule(&net, tree);
        assert!(validate_schedule(&net, tree, &sched), "schedule must verify");
        let busiest =
            (0..sched.length()).map(|s| sched.transmissions_in(s).len()).max().unwrap_or(0);
        println!(
            "{name:<6} {:>6} {:>12} {:>10} max/slot",
            round_latency_slots(tree),
            sched.length(),
            busiest
        );
    }

    println!("\nIRA slot-by-slot:");
    let sched = greedy_schedule(&net, &ira.tree);
    for s in 0..sched.length() {
        let txs: Vec<String> = sched
            .transmissions_in(s)
            .iter()
            .map(|&v| format!("{v}->{}", ira.tree.parent(v).unwrap()))
            .collect();
        println!("  slot {s}: {}", txs.join("  "));
    }
}

//! The paper's Fig. 4 toy example: two aggregation trees over the same
//! 6-node network, one with reliability 0.36 and one with 0.648, showing
//! why the choice of tree matters when links are unreliable.
//!
//! ```text
//! cargo run --example toy_reliability
//! ```

use wsn_model::{reliability, AggregationTree, NetworkBuilder, NodeId, PaperCost};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn main() {
    let mut b = NetworkBuilder::new(6);
    b.add_edge(4, 0, 1.0).unwrap();
    b.add_edge(5, 0, 1.0).unwrap();
    b.add_edge(2, 4, 0.5).unwrap(); // the weak link tree (a) uses
    b.add_edge(3, 4, 0.9).unwrap();
    b.add_edge(1, 5, 0.8).unwrap();
    b.add_edge(2, 5, 0.9).unwrap(); // the better alternative for node 2
    let net = b.build().unwrap();

    let tree_a = AggregationTree::from_edges(
        n(0),
        6,
        &[(n(4), n(0)), (n(5), n(0)), (n(2), n(4)), (n(3), n(4)), (n(1), n(5))],
    )
    .unwrap();
    let tree_b = AggregationTree::from_edges(
        n(0),
        6,
        &[(n(4), n(0)), (n(5), n(0)), (n(2), n(5)), (n(3), n(4)), (n(1), n(5))],
    )
    .unwrap();

    for (label, tree) in [("(a)", &tree_a), ("(b)", &tree_b)] {
        let q = reliability::tree_reliability(&net, tree);
        let c = PaperCost::of_tree(&net, tree);
        println!("tree {label}: Q(T) = {q:.3}, cost = {c}");
        for (child, parent) in tree.edges() {
            let e = net.find_edge(child, parent).unwrap();
            println!("    {child} -> {parent}   (q = {})", net.link(e).prr());
        }
    }
    println!();
    println!("Rerouting node 2 over the 0.9 link lifts one-round delivery");
    println!("probability from 0.36 to 0.648 — an 80% improvement for free.");
}
